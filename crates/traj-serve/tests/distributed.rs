//! Multi-process distributed serving tests: a fleet of `shardd` child
//! processes (one per shard snapshot) behind a [`Coordinator`] answers
//! byte-identically to opening the same shard directory in-process —
//! across every partitioner, index backend, and storage layout — and
//! injected failures (killed shards, stalled responses, in-flight
//! corruption) surface as typed errors or correct degraded answers,
//! never silently wrong ones.

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use traj_query::{
    knn_take_fill, merge_global_ids, merge_knn_candidates, DbOptions, Dissimilarity, KnnQuery,
    Query, QueryBatch, QueryExecutor, QueryResult, SimilarityQuery, TrajDb,
};
use traj_serve::wire::{encode_message, Message};
use traj_serve::{
    BatchConfig, Coordinator, CoordinatorError, CoordinatorOptions, FailurePolicy, Fault,
    FaultDirection, FaultProxy, Placement, ResponseStatus, ShardInfo, SharedCoordinator, WireError,
};
use trajectory::gen::{generate, DatasetSpec, Scale};
use trajectory::shard::{partition, PartitionStrategy, ShardSet};
use trajectory::{KeptBitmap, TrajId, TrajectoryDb};

fn unique_path(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join("qdts_distributed_tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(format!(
        "{tag}_{}_{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ))
}

fn dataset() -> TrajectoryDb {
    generate(&DatasetSpec::tdrive(Scale::Smoke).with_trajectories(24), 3)
}

/// A batch exercising every query variant (both kNN measures included).
fn mixed_batch(db: &TrajectoryDb) -> QueryBatch {
    let bounds = db.bounding_cube();
    let mid_t = (bounds.t_min + bounds.t_max) / 2.0;
    let cube = trajectory::Cube::new(
        bounds.x_min,
        (bounds.x_min + bounds.x_max) / 2.0,
        bounds.y_min,
        (bounds.y_min + bounds.y_max) / 2.0,
        bounds.t_min,
        mid_t,
    );
    let probe = db.get(0).clone();
    let ts = bounds.t_min;
    let te = mid_t;
    QueryBatch::from_queries(vec![
        Query::Range(cube),
        Query::Knn(KnnQuery {
            query: probe.clone(),
            ts,
            te,
            k: 3,
            measure: Dissimilarity::Edr { eps: 2_000.0 },
        }),
        Query::Knn(KnnQuery {
            query: probe.clone(),
            ts,
            te,
            k: 2,
            measure: Dissimilarity::t2vec_default(),
        }),
        Query::Similarity(SimilarityQuery {
            query: probe,
            ts,
            te,
            delta: 5_000.0,
            step: 600.0,
        }),
        Query::RangeKept(cube),
    ])
}

/// Writes a shard directory for `strategy`, with per-shard keep-every-
/// other-point bitmaps, plain or quantized.
fn write_shard_dir(db: &TrajectoryDb, strategy: &PartitionStrategy, quantized: bool) -> PathBuf {
    let store = db.to_store();
    let shards = partition(&store, strategy);
    let kept: Vec<KeptBitmap> = shards
        .iter()
        .map(|sh| {
            let mut bitmap = KeptBitmap::zeros(sh.store.total_points());
            for p in (0..sh.store.total_points()).step_by(2) {
                bitmap.insert(p as u32);
            }
            bitmap
        })
        .collect();
    let dir = unique_path(if quantized { "qshards" } else { "shards" });
    if quantized {
        ShardSet::write_quantized(&dir, &shards, Some(&kept), 1e-3).expect("write quantized");
    } else {
        ShardSet::write_with(&dir, &shards, &kept).expect("write shards");
    }
    dir
}

/// A fleet of `shardd` children, killed (and reaped) on drop.
struct Cluster {
    children: Vec<Child>,
    addrs: Vec<String>,
}

impl Cluster {
    /// Spawns one `shardd` per shard file of the set — all children
    /// first, then the `READY <addr>` waits — so the shards load their
    /// snapshots in parallel instead of serially.
    fn spawn(dir: &Path, set: &ShardSet, extra_args: &[&str]) -> Cluster {
        let mut children = Vec::new();
        let mut stdouts = Vec::new();
        for e in set.entries() {
            let (child, stdout) = spawn_shardd(&dir.join(&e.file), extra_args);
            children.push(child);
            stdouts.push(stdout);
        }
        let addrs = stdouts.into_iter().map(wait_ready).collect();
        Cluster { children, addrs }
    }

    /// Kills shard `i` and waits for it to die.
    fn kill(&mut self, i: usize) {
        let _ = self.children[i].kill();
        let _ = self.children[i].wait();
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        for child in &mut self.children {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

fn spawn_shardd(snap: &Path, extra_args: &[&str]) -> (Child, std::process::ChildStdout) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_shardd"))
        .arg("--snap")
        .arg(snap)
        .args(extra_args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn shardd");
    let stdout = child.stdout.take().expect("piped stdout");
    (child, stdout)
}

fn wait_ready(stdout: std::process::ChildStdout) -> String {
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("shardd READY line");
    line.trim()
        .strip_prefix("READY ")
        .unwrap_or_else(|| panic!("unexpected shardd greeting: {line:?}"))
        .to_string()
}

/// Fast-failure coordinator tuning for tests.
fn test_opts() -> CoordinatorOptions {
    CoordinatorOptions {
        connect_timeout: Duration::from_millis(500),
        request_timeout: Duration::from_secs(5),
        retries: 1,
        backoff: Duration::from_millis(10),
        ..CoordinatorOptions::default()
    }
}

fn cleanup(dir: &Path) {
    std::fs::remove_dir_all(dir).ok();
}

/// The headline equivalence matrix: every partitioner × every index
/// backend × every storage layout, the coordinator's merged answer is
/// byte-identical (re-encoded frame equality) to opening the same
/// shard directory in one process. The shard manifest round-trips the
/// `addr=` placement assignments through disk along the way.
#[test]
fn distributed_matches_in_process_across_the_matrix() {
    let db = dataset();
    let batch = mixed_batch(&db);
    let partitioners: [(&str, PartitionStrategy); 3] = [
        ("grid 2x2", PartitionStrategy::Grid { nx: 2, ny: 2 }),
        ("time 3", PartitionStrategy::Time { parts: 3 }),
        ("hash 3", PartitionStrategy::Hash { parts: 3 }),
    ];
    let backends: [(&str, &str); 3] = [("octree", "octree"), ("kd", "kd"), ("scan", "scan")];
    // (label, quantized shard files?, shardd --mode, in-process DbOptions mutator)
    let layouts: [(&str, bool, &str); 3] = [
        ("owned", false, "owned"),
        ("mapped", false, "mapped"),
        ("quantized", true, "auto"),
    ];

    for (part_label, strategy) in &partitioners {
        let plain_dir = write_shard_dir(&db, strategy, false);
        let quant_dir = write_shard_dir(&db, strategy, true);
        for (backend_label, backend_flag) in backends {
            for (layout_label, quantized, mode_flag) in layouts {
                let dir = if quantized { &quant_dir } else { &plain_dir };
                let label = format!(
                    "partition `{part_label}`, backend `{backend_label}`, layout `{layout_label}`"
                );

                let mut opts = DbOptions::new().backend(match backend_flag {
                    "kd" => traj_query::BackendKind::MedianKd,
                    "scan" => traj_query::BackendKind::Scan,
                    _ => traj_query::BackendKind::Octree,
                });
                if mode_flag == "owned" {
                    opts = opts.owned();
                } else if mode_flag == "mapped" {
                    opts = opts.mapped();
                }
                let expected = TrajDb::open(dir, opts)
                    .expect("open shard dir in-process")
                    .execute_batch(&batch);

                let mut set = ShardSet::load(dir).expect("load manifest");
                let cluster =
                    Cluster::spawn(dir, &set, &["--backend", backend_flag, "--mode", mode_flag]);
                // Persist the placement through the manifest and read
                // it back: the round-trip is part of what's under test.
                set.set_addrs(&cluster.addrs).expect("assign addrs");
                set.save_manifest().expect("save manifest");
                let reloaded = ShardSet::load(dir).expect("reload manifest");
                let placement = Placement::from_manifest(&reloaded).expect("placement");
                assert_eq!(
                    placement.total_trajs(),
                    db.len(),
                    "{label}: placement total"
                );

                let coord = Coordinator::connect(placement, test_opts()).expect("connect cluster");
                let response = coord.execute_batch(&batch).expect("distributed batch");
                assert_eq!(response.status, ResponseStatus::Complete, "{label}");
                assert_eq!(response.results, expected, "{label}: results diverge");
                assert_eq!(
                    encode_message(&Message::Response(response.results)),
                    encode_message(&Message::Response(expected)),
                    "{label}: encodings diverge"
                );

                // Connection reuse: a second batch on the same
                // coordinator, no reconnect.
                let again = coord.execute_batch(&batch).expect("second batch");
                assert_eq!(again.status, ResponseStatus::Complete, "{label}: reuse");
            }
        }
        cleanup(&plain_dir);
        cleanup(&quant_dir);
    }
}

/// Computes the expected degraded answer by opening each *surviving*
/// shard file as its own single-store database and merging through the
/// same public merge functions the sharded engine uses.
fn expected_degraded(
    dir: &Path,
    set: &ShardSet,
    survivors: &[usize],
    batch: &QueryBatch,
) -> Vec<QueryResult> {
    let dbs: Vec<(TrajDb, &[TrajId])> = survivors
        .iter()
        .map(|&s| {
            let e = &set.entries()[s];
            let db = TrajDb::open(dir.join(&e.file), DbOptions::new()).expect("open shard");
            (db, e.global_ids.as_slice())
        })
        .collect();
    let remap = |ids: Vec<TrajId>, globals: &[TrajId]| -> Vec<TrajId> {
        ids.into_iter().map(|l| globals[l]).collect()
    };
    let mut universe: Vec<TrajId> = dbs
        .iter()
        .flat_map(|(_, globals)| globals.iter().copied())
        .collect();
    universe.sort_unstable();

    batch
        .queries()
        .iter()
        .map(|q| match q {
            Query::Range(c) => QueryResult::Range(merge_global_ids(
                dbs.iter().map(|(db, g)| remap(db.range(c), g)).collect(),
            )),
            Query::Similarity(s) => QueryResult::Similarity(merge_global_ids(
                dbs.iter()
                    .map(|(db, g)| remap(db.similarity(s), g))
                    .collect(),
            )),
            Query::Knn(k) => {
                let streams: Vec<Vec<(f64, TrajId)>> = dbs
                    .iter()
                    .map(|(db, g)| {
                        db.knn_candidates(k)
                            .into_iter()
                            .map(|(d, l)| (d, g[l]))
                            .collect()
                    })
                    .collect();
                let merged = merge_knn_candidates(k.k, &streams);
                QueryResult::Knn(knn_take_fill(k.k, &merged, universe.iter().copied()))
            }
            Query::RangeKept(c) => {
                let per: Vec<Option<Vec<TrajId>>> = dbs
                    .iter()
                    .map(|(db, g)| db.range_kept(c).map(|ids| remap(ids, g)))
                    .collect();
                let all_kept = !per.is_empty() && per.iter().all(Option::is_some);
                QueryResult::RangeKept(
                    all_kept.then(|| merge_global_ids(per.into_iter().flatten().collect())),
                )
            }
        })
        .collect()
}

/// Kill one shard mid-flight: under `Degrade` the answer is exactly
/// the merge over the survivors (with the kNN fill universe shrunk to
/// their ids) and the missing shard is reported; under `FailFast` the
/// same failure is a typed `ShardFailed`.
#[test]
fn killed_shard_degrades_or_fails_fast_but_never_lies() {
    let db = dataset();
    let batch = mixed_batch(&db);
    let dir = write_shard_dir(&db, &PartitionStrategy::Hash { parts: 3 }, false);
    let mut set = ShardSet::load(&dir).expect("load manifest");
    let mut cluster = Cluster::spawn(&dir, &set, &[]);
    set.set_addrs(&cluster.addrs).expect("assign addrs");
    let placement = Placement::from_manifest(&set).expect("placement");

    let coord = Coordinator::connect(placement.clone(), test_opts()).expect("connect");
    // Healthy first: complete answers.
    let healthy = coord.execute_batch(&batch).expect("healthy batch");
    assert_eq!(healthy.status, ResponseStatus::Complete);

    let victim = 1;
    cluster.kill(victim);

    // Degrade: correct merge over the survivors, victim reported.
    let degraded = coord
        .execute_batch_with(&batch, FailurePolicy::Degrade)
        .expect("degraded batch");
    assert_eq!(
        degraded.status,
        ResponseStatus::Degraded {
            missing_shards: vec![victim]
        }
    );
    assert_eq!(degraded.failures.len(), 1);
    assert_eq!(degraded.failures[0].0, victim);
    let survivors: Vec<usize> = (0..set.len()).filter(|&s| s != victim).collect();
    let expected = expected_degraded(&dir, &set, &survivors, &batch);
    assert_eq!(degraded.results, expected, "degraded answer is wrong");

    // Degraded range hits are a subset of the healthy ones.
    for (got, full) in degraded.results.iter().zip(&healthy.results) {
        if let (QueryResult::Range(got), QueryResult::Range(full)) = (got, full) {
            assert!(got.iter().all(|id| full.contains(id)));
        }
    }

    // FailFast: the same outage is a typed error naming the victim.
    match coord.execute_batch_with(&batch, FailurePolicy::FailFast) {
        Err(CoordinatorError::ShardFailed { shard, .. }) => assert_eq!(shard, victim),
        other => panic!("expected ShardFailed, got {other:?}"),
    }

    // Killing every shard is an outage even under Degrade.
    for s in 0..set.len() {
        if s != victim {
            cluster.kill(s);
        }
    }
    match coord.execute_batch_with(&batch, FailurePolicy::Degrade) {
        Err(CoordinatorError::ShardFailed { .. }) => {}
        other => panic!("expected total outage to fail, got {other:?}"),
    }
    cleanup(&dir);
}

/// A shard that stops responding mid-exchange (black-holed response)
/// trips the request deadline as a typed `Timeout`; a shard whose
/// response is corrupted in flight trips the frame checksum as a typed
/// decode error. Neither ever yields a wrong answer.
#[test]
fn stalled_and_corrupted_shards_surface_typed_errors() {
    let db = dataset();
    let batch = mixed_batch(&db);
    let dir = write_shard_dir(&db, &PartitionStrategy::Hash { parts: 1 }, false);
    let set = ShardSet::load(&dir).expect("load manifest");
    let cluster = Cluster::spawn(&dir, &set, &[]);
    let upstream: std::net::SocketAddr = cluster.addrs[0].parse().expect("shardd addr");
    let proxy = FaultProxy::start(upstream).expect("start proxy");

    // Server→client bytes 0..hello_len carry the ShardInfo handshake
    // (fixed-size frame for a non-empty shard: the cube is always
    // present, so any Some(bounds) value gives the right length);
    // everything after is the shard response.
    let hello_len = encode_message(&Message::ShardInfo(ShardInfo {
        trajs: 0,
        points: 0,
        has_kept: false,
        bounds: Some(trajectory::Cube::new(0.0, 1.0, 0.0, 1.0, 0.0, 1.0)),
    }))
    .len() as u64;

    let placement = |addr: std::net::SocketAddr| {
        Placement::from_parts(vec![(
            addr.to_string(),
            set.entries()[0].global_ids.clone(),
        )])
        .expect("placement")
    };
    let opts = CoordinatorOptions {
        connect_timeout: Duration::from_millis(500),
        request_timeout: Duration::from_millis(300),
        retries: 0,
        backoff: Duration::from_millis(1),
        policy: FailurePolicy::FailFast,
    };

    // Stall: the handshake passes, the first response byte never comes.
    proxy.set_fault(Fault::DropFrom {
        dir: FaultDirection::ServerToClient,
        offset: hello_len,
    });
    let coord = Coordinator::connect(placement(proxy.local_addr()), opts).expect("connect");
    match coord.execute_batch(&batch) {
        Err(CoordinatorError::ShardFailed {
            source: WireError::Timeout { .. },
            ..
        }) => {}
        other => panic!("expected a shard timeout, got {other:?}"),
    }

    // Corruption: flip a bit in the response frame's magic.
    proxy.set_fault(Fault::FlipBit {
        dir: FaultDirection::ServerToClient,
        offset: hello_len + 1,
        bit: 3,
    });
    let coord = Coordinator::connect(placement(proxy.local_addr()), opts).expect("connect");
    match coord.execute_batch(&batch) {
        Err(CoordinatorError::ShardFailed { source, .. }) => {
            assert!(
                !matches!(source, WireError::Io(_)),
                "corruption must be a typed decode error, got {source:?}"
            );
        }
        other => panic!("expected a typed decode failure, got {other:?}"),
    }

    // A delayed (but uncorrupted) response still answers correctly.
    proxy.set_fault(Fault::DelayAt {
        dir: FaultDirection::ServerToClient,
        offset: hello_len,
        delay: Duration::from_millis(50),
    });
    let relaxed = CoordinatorOptions {
        request_timeout: Duration::from_secs(5),
        ..opts
    };
    let coord = Coordinator::connect(placement(proxy.local_addr()), relaxed).expect("connect");
    let slow = coord.execute_batch(&batch).expect("delayed batch");
    let direct = TrajDb::open(&dir, DbOptions::new())
        .expect("open shard dir")
        .execute_batch(&batch);
    assert_eq!(slow.results, direct, "a delay must never change results");
    cleanup(&dir);
}

/// Placement validation: missing `addr=` entries and malformed covers
/// are typed errors, and a shard whose handshake contradicts the
/// placement map is rejected at connect time.
#[test]
fn bad_placements_and_mismatched_handshakes_are_rejected() {
    let db = dataset();
    let dir = write_shard_dir(&db, &PartitionStrategy::Hash { parts: 2 }, false);
    let set = ShardSet::load(&dir).expect("load manifest");

    // No addresses assigned yet: not a placement map.
    match Placement::from_manifest(&set) {
        Err(CoordinatorError::MissingAddr { .. }) => {}
        other => panic!("expected MissingAddr, got {other:?}"),
    }

    // Doubly-assigned global id.
    match Placement::from_parts(vec![
        ("127.0.0.1:1001".into(), vec![0, 1]),
        ("127.0.0.1:1002".into(), vec![1]),
    ]) {
        Err(CoordinatorError::BadPlacement { .. }) => {}
        other => panic!("expected BadPlacement, got {other:?}"),
    }

    // Duplicate address.
    match Placement::from_parts(vec![
        ("127.0.0.1:1001".into(), vec![0]),
        ("127.0.0.1:1001".into(), vec![1]),
    ]) {
        Err(CoordinatorError::BadPlacement { .. }) => {}
        other => panic!("expected BadPlacement, got {other:?}"),
    }

    // A live shardd serving shard 0's snapshot, but a placement that
    // assigns it the whole database: handshake cross-check fails.
    let cluster = Cluster::spawn(&dir, &set, &[]);
    let all_ids: Vec<TrajId> = (0..set.total_trajs()).collect();
    let lying = Placement::from_parts(vec![(cluster.addrs[0].clone(), all_ids)]).expect("parts");
    match Coordinator::connect(lying, test_opts()) {
        Err(CoordinatorError::ShardFailed {
            source: WireError::Malformed { .. },
            ..
        }) => {}
        Err(other) => panic!("expected a handshake mismatch, got {other:?}"),
        Ok(_) => panic!("a lying placement must not connect"),
    }

    // A manifest whose `bounds=` token disagrees with what the shard
    // declares in its handshake is rejected the same way: the routing
    // table must never silently adopt bounds the shard contradicts.
    let manifest_path = dir.join(trajectory::shard::MANIFEST_FILE);
    let text = std::fs::read_to_string(&manifest_path).expect("read manifest");
    let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
    let line = lines
        .iter_mut()
        .find(|l| l.contains("bounds="))
        .expect("manifest carries bounds tokens");
    let start = line.find("bounds=").expect("token start");
    let end = line[start..].find(' ').map_or(line.len(), |i| start + i);
    line.replace_range(start..end, "bounds=0.0,1.0,0.0,1.0,0.0,1.0");
    std::fs::write(&manifest_path, lines.join("\n") + "\n").expect("write tampered manifest");

    let mut tampered = ShardSet::load(&dir).expect("tampered bounds are still well-formed");
    tampered.set_addrs(&cluster.addrs).expect("assign addrs");
    let placement = Placement::from_manifest(&tampered).expect("placement");
    match Coordinator::connect(placement, test_opts()) {
        Err(CoordinatorError::ShardFailed {
            shard,
            source: WireError::Malformed { .. },
            ..
        }) => assert_eq!(shard, 0, "the tampered shard is the one named"),
        Err(other) => panic!("expected a bounds mismatch rejection, got {other:?}"),
        Ok(_) => panic!("tampered bounds must not connect"),
    }
    cleanup(&dir);
}

/// Every manifest entry's bounds, the shard whose data starts latest in
/// time, and a probe cube spanning the whole spatial domain but ending
/// strictly before that shard's first timestamp — so bound-pruned
/// routing must send it no frame at all.
fn pruning_probe(set: &ShardSet) -> (trajectory::Cube, usize) {
    let bounds: Vec<trajectory::Cube> = set
        .entries()
        .iter()
        .map(|e| e.bounds.expect("manifest carries shard bounds"))
        .collect();
    let victim = bounds
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.t_min.total_cmp(&b.1.t_min))
        .expect("non-empty shard set")
        .0;
    let lo = |f: fn(&trajectory::Cube) -> f64| bounds.iter().map(f).fold(f64::INFINITY, f64::min);
    let hi =
        |f: fn(&trajectory::Cube) -> f64| bounds.iter().map(f).fold(f64::NEG_INFINITY, f64::max);
    let t_lo = lo(|b| b.t_min);
    let cut = bounds[victim].t_min - 1.0;
    assert!(
        cut > t_lo,
        "time partitioning must separate shard start times"
    );
    let cube = trajectory::Cube::new(
        lo(|b| b.x_min),
        hi(|b| b.x_max),
        lo(|b| b.y_min),
        hi(|b| b.y_max),
        t_lo,
        cut,
    );
    (cube, victim)
}

/// Bound-pruned routing: a batch confined to the early part of the time
/// axis sends *no frame at all* to the shard whose data starts after
/// it, yet answers exactly like the full in-process database, and the
/// per-shard frame counters record both the pruning and a later
/// whole-domain fan-out.
#[test]
fn bound_pruned_routing_skips_untouched_shards_and_counts_frames() {
    let db = dataset();
    let dir = write_shard_dir(&db, &PartitionStrategy::Time { parts: 3 }, false);
    let mut set = ShardSet::load(&dir).expect("load manifest");
    let (cube, victim) = pruning_probe(&set);
    let probe = db.get(0).clone();
    let batch = QueryBatch::from_queries(vec![
        Query::Range(cube),
        Query::RangeKept(cube),
        Query::Similarity(SimilarityQuery {
            query: probe,
            ts: cube.t_min,
            te: cube.t_max,
            delta: 5_000.0,
            step: 600.0,
        }),
    ]);
    let expected = TrajDb::open(&dir, DbOptions::new())
        .expect("open shard dir in-process")
        .execute_batch(&batch);

    let cluster = Cluster::spawn(&dir, &set, &[]);
    set.set_addrs(&cluster.addrs).expect("assign addrs");
    let placement = Placement::from_manifest(&set).expect("placement");
    let coord = Coordinator::connect(placement, test_opts()).expect("connect");

    let response = coord.execute_batch(&batch).expect("pruned batch");
    assert_eq!(response.status, ResponseStatus::Complete);
    assert_eq!(
        response.results, expected,
        "pruned routing changed the answer"
    );

    let stats = coord.stats();
    assert_eq!(stats.rounds, 1);
    assert_eq!(stats.queries, batch.queries().len() as u64);
    assert_eq!(
        stats.shards[victim].frames_sent, 0,
        "the late shard must get no frame"
    );
    assert_eq!(stats.shards[victim].frames_pruned, 1);
    assert!(stats.frames_sent() >= 1, "some shard must be contacted");

    // A whole-domain range touches every shard: each counter moves.
    let everywhere = QueryBatch::from_queries(vec![Query::Range(db.bounding_cube())]);
    let full = coord.execute_batch(&everywhere).expect("full fan-out");
    assert_eq!(full.status, ResponseStatus::Complete);
    for (s, shard) in coord.stats().shards.iter().enumerate() {
        assert!(shard.frames_sent >= 1, "shard {s} missed the full fan-out");
    }
    cleanup(&dir);
}

/// A dead shard that bound-pruning routes away from cannot hurt the
/// answer: with the batch confined to the time range before the
/// victim's data starts, the response stays `Complete` with no recorded
/// failures under *both* failure policies — no frame is ever sent to
/// the corpse.
#[test]
fn a_pruned_away_dead_shard_stays_complete() {
    let db = dataset();
    let dir = write_shard_dir(&db, &PartitionStrategy::Time { parts: 3 }, false);
    let mut set = ShardSet::load(&dir).expect("load manifest");
    let (cube, victim) = pruning_probe(&set);
    let batch = QueryBatch::from_queries(vec![Query::Range(cube), Query::RangeKept(cube)]);
    let expected = TrajDb::open(&dir, DbOptions::new())
        .expect("open shard dir in-process")
        .execute_batch(&batch);

    let mut cluster = Cluster::spawn(&dir, &set, &[]);
    set.set_addrs(&cluster.addrs).expect("assign addrs");
    let placement = Placement::from_manifest(&set).expect("placement");
    let coord = Coordinator::connect(placement, test_opts()).expect("connect");
    cluster.kill(victim);

    for policy in [FailurePolicy::Degrade, FailurePolicy::FailFast] {
        let response = coord
            .execute_batch_with(&batch, policy)
            .expect("the dead shard is never contacted");
        assert_eq!(response.status, ResponseStatus::Complete, "{policy:?}");
        assert!(response.failures.is_empty(), "{policy:?}: failures leaked");
        assert_eq!(
            response.results, expected,
            "{policy:?}: answer diverges from the full database"
        );
    }
    assert_eq!(coord.stats().shards[victim].frames_sent, 0);
    cleanup(&dir);
}

/// Many callers sharing one coordinator: concurrent single-query
/// submissions coalesce into shared wire rounds through the
/// admission/linger layer, every caller still gets exactly its own
/// correct slice back, and a `from_parts` placement (no manifest
/// bounds) adopts the shards' handshake bounds into the routing table.
#[test]
fn shared_coordinator_coalesces_concurrent_submissions() {
    let db = dataset();
    let dir = write_shard_dir(&db, &PartitionStrategy::Hash { parts: 2 }, false);
    let set = ShardSet::load(&dir).expect("load manifest");

    // In-process servers instead of shardd children: the placement is
    // built from parts, so routing bounds must come from the handshake.
    let mut servers = Vec::new();
    let mut parts = Vec::new();
    for e in set.entries() {
        let shard_db = TrajDb::open(dir.join(&e.file), DbOptions::new()).expect("open shard");
        let server =
            traj_serve::Server::start(shard_db, "127.0.0.1:0", traj_serve::ServeOptions::batched())
                .expect("start shard server");
        parts.push((server.local_addr().to_string(), e.global_ids.clone()));
        servers.push(server);
    }
    let placement = Placement::from_parts(parts).expect("placement");
    let coord = Coordinator::connect(placement, test_opts()).expect("connect");
    assert!(
        coord.shard_bounds().iter().all(Option::is_some),
        "handshake bounds must be adopted into the routing table"
    );

    let queries = mixed_batch(&db).into_queries();
    let truth = TrajDb::open(&dir, DbOptions::new()).expect("open shard dir in-process");
    let expected: Vec<QueryResult> = queries
        .iter()
        .map(|q| {
            truth
                .execute_batch(&QueryBatch::from_queries(vec![q.clone()]))
                .remove(0)
        })
        .collect();

    let shared = SharedCoordinator::start(
        coord,
        BatchConfig {
            max_queries: 256,
            linger: Duration::from_millis(50),
        },
        2,
    );
    let n = 16;
    let barrier = std::sync::Barrier::new(n);
    std::thread::scope(|scope| {
        for i in 0..n {
            let q = queries[i % queries.len()].clone();
            let want = expected[i % queries.len()].clone();
            let (shared, barrier) = (&shared, &barrier);
            scope.spawn(move || {
                barrier.wait();
                let resp = shared
                    .execute_batch(&QueryBatch::from_queries(vec![q]))
                    .expect("shared batch");
                assert_eq!(resp.status, ResponseStatus::Complete);
                assert!(resp.failures.is_empty());
                assert_eq!(
                    resp.results,
                    vec![want],
                    "caller {i} got someone else's slice"
                );
            });
        }
    });

    let stats = shared.stats();
    assert_eq!(stats.queries, n as u64, "every submission is counted");
    assert!(
        stats.rounds < n as u64,
        "{n} concurrent submissions never coalesced: {} rounds",
        stats.rounds
    );
    assert!(stats.mean_coalesced_batch() > 1.0);
    shared.shutdown();
    for server in servers {
        server.shutdown();
    }
    cleanup(&dir);
}
