//! Property tests for the fault-injection proxy: every frame kind
//! (plain batch, coordinator handshake, shard batch), driven through
//! [`FaultProxy`] under every fault class (close, black-hole, delay,
//! bit-flip) at arbitrary byte offsets in either direction, yields
//! either the correct answer or a typed [`WireError`] — never a
//! silently wrong answer, and never a hang (client deadlines bound
//! every stall).

use std::net::SocketAddr;
use std::sync::OnceLock;
use std::time::Duration;

use proptest::prelude::*;
use traj_query::{
    DbOptions, Dissimilarity, KnnQuery, Query, QueryBatch, QueryExecutor, QueryResult,
    SimilarityQuery, TrajDb,
};
use traj_serve::wire::{encode_message, Message};
use traj_serve::{
    execute_shard_batch, Client, ClientConfig, Fault, FaultDirection, FaultProxy, ServeOptions,
    Server, ShardInfo, ShardResult, WireError,
};
use trajectory::gen::{generate, DatasetSpec, Scale};
use trajectory::TrajectoryDb;

fn dataset() -> TrajectoryDb {
    generate(&DatasetSpec::tdrive(Scale::Smoke).with_trajectories(24), 3)
}

fn mixed_batch(db: &TrajectoryDb) -> QueryBatch {
    let bounds = db.bounding_cube();
    let mid_t = (bounds.t_min + bounds.t_max) / 2.0;
    let cube = trajectory::Cube::new(
        bounds.x_min,
        (bounds.x_min + bounds.x_max) / 2.0,
        bounds.y_min,
        (bounds.y_min + bounds.y_max) / 2.0,
        bounds.t_min,
        mid_t,
    );
    let probe = db.get(0).clone();
    QueryBatch::from_queries(vec![
        Query::Range(cube),
        Query::Knn(KnnQuery {
            query: probe.clone(),
            ts: bounds.t_min,
            te: mid_t,
            k: 3,
            measure: Dissimilarity::Edr { eps: 2_000.0 },
        }),
        Query::Similarity(SimilarityQuery {
            query: probe,
            ts: bounds.t_min,
            te: mid_t,
            delta: 5_000.0,
            step: 600.0,
        }),
        Query::RangeKept(cube),
    ])
}

/// One server shared by all cases (leaked so it outlives the test fns)
/// plus the in-process ground truth for every exchange kind.
struct Fixture {
    server_addr: SocketAddr,
    batch: QueryBatch,
    results: Vec<QueryResult>,
    shard_results: Vec<ShardResult>,
    info: ShardInfo,
}

static FIXTURE: OnceLock<Fixture> = OnceLock::new();

fn fixture() -> &'static Fixture {
    FIXTURE.get_or_init(|| {
        let db = dataset();
        let truth = TrajDb::from_store(db.to_store(), DbOptions::new());
        let batch = mixed_batch(&db);
        let results = truth.execute_batch(&batch);
        let shard_results = execute_shard_batch(&truth, &batch);
        let info = ShardInfo {
            trajs: truth.len() as u64,
            points: truth.total_points() as u64,
            has_kept: truth.has_kept_bitmap(),
            bounds: (truth.total_points() > 0).then(|| truth.bounding_cube()),
        };
        let served = TrajDb::from_store(db.to_store(), DbOptions::new());
        let server =
            Server::start(served, "127.0.0.1:0", ServeOptions::batched()).expect("start server");
        let server_addr = server.local_addr();
        // The server must outlive every proptest case; leak it.
        std::mem::forget(server);
        Fixture {
            server_addr,
            batch,
            results,
            shard_results,
            info,
        }
    })
}

#[derive(Debug, Clone, Copy)]
enum Exchange {
    Batch,
    Hello,
    Shard,
}

/// The request id every shard exchange in this suite is tagged with
/// (fixed so both directions of [`direction_len`] stay deterministic).
const SHARD_REQ_ID: u64 = 7;

/// Bytes each direction of the exchange carries, so generated offsets
/// land meaningfully inside (or just past) the stream.
fn direction_len(fx: &Fixture, exchange: Exchange, dir: FaultDirection) -> u64 {
    let msg = match (exchange, dir) {
        (Exchange::Batch, FaultDirection::ClientToServer) => Message::Request(fx.batch.clone()),
        (Exchange::Batch, FaultDirection::ServerToClient) => Message::Response(fx.results.clone()),
        (Exchange::Hello, FaultDirection::ClientToServer) => Message::Hello,
        (Exchange::Hello, FaultDirection::ServerToClient) => Message::ShardInfo(fx.info),
        (Exchange::Shard, FaultDirection::ClientToServer) => Message::ShardRequest {
            id: SHARD_REQ_ID,
            batch: fx.batch.clone(),
        },
        (Exchange::Shard, FaultDirection::ServerToClient) => Message::ShardResponse {
            id: SHARD_REQ_ID,
            results: fx.shard_results.clone(),
        },
    };
    encode_message(&msg).len() as u64
}

fn arb_direction() -> impl Strategy<Value = FaultDirection> {
    prop_oneof![
        Just(FaultDirection::ClientToServer),
        Just(FaultDirection::ServerToClient),
    ]
}

fn arb_exchange() -> impl Strategy<Value = Exchange> {
    prop_oneof![
        Just(Exchange::Batch),
        Just(Exchange::Hello),
        Just(Exchange::Shard),
    ]
}

/// (kind selector, fraction of the direction's byte length, bit, delay)
/// resolved into a concrete fault once the exchange is known.
fn resolve_fault(
    kind: u8,
    dir: FaultDirection,
    frac: f64,
    bit: u8,
    delay_ms: u64,
    len: u64,
) -> Fault {
    // frac ranges past 1.0 so some faults land beyond the stream end
    // (and must therefore be harmless).
    let offset = (frac * len as f64) as u64;
    match kind {
        0 => Fault::None,
        1 => Fault::CloseAt { dir, offset },
        2 => Fault::DropFrom { dir, offset },
        3 => Fault::DelayAt {
            dir,
            offset,
            delay: Duration::from_millis(delay_ms),
        },
        _ => Fault::FlipBit { dir, offset, bit },
    }
}

/// Faults that cannot corrupt or destroy the exchange must leave it
/// intact: `None`, a short delay, or any fault anchored past the last
/// byte its direction carries.
fn must_succeed(fault: &Fault, len_of_dir: u64) -> bool {
    match fault {
        Fault::None | Fault::DelayAt { .. } => true,
        Fault::CloseAt { offset, .. } | Fault::DropFrom { offset, .. } => *offset >= len_of_dir,
        Fault::FlipBit { offset, .. } => *offset >= len_of_dir,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn faulted_exchanges_answer_correctly_or_fail_typed(
        (exchange, kind, dir, frac, bit, delay_ms) in (
            arb_exchange(),
            0u8..5,
            arb_direction(),
            0.0..1.15f64,
            0u8..8,
            5u64..80,
        )
    ) {
        let fx = fixture();
        let len = direction_len(fx, exchange, dir);
        let fault = resolve_fault(kind, dir, frac, bit, delay_ms, len);

        let proxy = FaultProxy::start(fx.server_addr).expect("start proxy");
        proxy.set_fault(fault);
        let cfg = ClientConfig {
            connect_timeout: Some(Duration::from_millis(500)),
            read_timeout: Some(Duration::from_millis(600)),
            write_timeout: Some(Duration::from_millis(600)),
        };
        let mut client = Client::connect_with(proxy.local_addr(), &cfg).expect("connect");

        let outcome: Result<(), WireError> = match exchange {
            Exchange::Batch => client.execute_batch(&fx.batch).map(|got| {
                assert_eq!(got, fx.results, "fault {fault:?} changed batch results");
            }),
            Exchange::Hello => client.hello().map(|got| {
                assert_eq!(got, fx.info, "fault {fault:?} changed the handshake");
            }),
            Exchange::Shard => client.execute_shard_batch(&fx.batch, SHARD_REQ_ID).map(|got| {
                assert_eq!(got, fx.shard_results, "fault {fault:?} changed shard results");
            }),
        };

        match outcome {
            // Correct answer (asserted above): always acceptable.
            Ok(()) => {}
            Err(e) => {
                prop_assert!(
                    !must_succeed(&fault, len),
                    "harmless fault {fault:?} failed the exchange: {e}"
                );
                // A bit flip inside the stream must surface as a typed
                // protocol error (remote reject, decode error, or a
                // deadline if framing desynchronized) — never as raw
                // transport Io.
                if let Fault::FlipBit { offset, .. } = fault {
                    if offset < len {
                        prop_assert!(
                            !matches!(e, WireError::Io(_)),
                            "bit flip surfaced as untyped Io: {e}"
                        );
                    }
                }
            }
        }
    }
}

/// Targeted flips in the fields this wire revision added — the shard
/// request id (the first 8 payload bytes of both shard frame kinds)
/// and the `ShardInfo` bounds cube in the handshake reply — must land
/// as typed errors or leave the answer intact, never corrupt it.
#[test]
fn flips_in_request_id_and_bounds_bytes_land_typed() {
    let fx = fixture();
    assert!(
        fx.info.bounds.is_some(),
        "fixture dataset has points, so the handshake must carry bounds"
    );
    let cfg = ClientConfig {
        connect_timeout: Some(Duration::from_millis(500)),
        read_timeout: Some(Duration::from_millis(600)),
        write_timeout: Some(Duration::from_millis(600)),
    };
    // Stream offsets: the 12-byte header puts the shard request id at
    // 12..20; the ShardInfo payload (version u16, trajs u64, points
    // u64, has_kept u8, bounds-presence u8) puts the 48 cube bytes at
    // 32..80.
    let cases = [
        (Exchange::Shard, FaultDirection::ClientToServer, 12u64),
        (Exchange::Shard, FaultDirection::ClientToServer, 19),
        (Exchange::Shard, FaultDirection::ServerToClient, 12),
        (Exchange::Shard, FaultDirection::ServerToClient, 19),
        (Exchange::Hello, FaultDirection::ServerToClient, 31), // presence byte
        (Exchange::Hello, FaultDirection::ServerToClient, 32), // first cube byte
        (Exchange::Hello, FaultDirection::ServerToClient, 79), // last cube byte
    ];
    for (exchange, dir, offset) in cases {
        for bit in [0u8, 7] {
            let proxy = FaultProxy::start(fx.server_addr).expect("start proxy");
            proxy.set_fault(Fault::FlipBit { dir, offset, bit });
            let mut client = Client::connect_with(proxy.local_addr(), &cfg).expect("connect");
            let err = match exchange {
                Exchange::Shard => match client.execute_shard_batch(&fx.batch, SHARD_REQ_ID) {
                    Ok(got) => {
                        assert_eq!(got, fx.shard_results, "flip at {offset} changed results");
                        continue;
                    }
                    Err(e) => e,
                },
                Exchange::Hello => match client.hello() {
                    Ok(got) => {
                        assert_eq!(got, fx.info, "flip at {offset} changed the handshake");
                        continue;
                    }
                    Err(e) => e,
                },
                Exchange::Batch => unreachable!("no batch cases above"),
            };
            assert!(
                !matches!(err, WireError::Io(_)),
                "flip at {offset} bit {bit} ({dir:?}) surfaced as untyped Io: {err}"
            );
        }
    }
}
