//! Integration tests: a server over loopback answers byte-identically
//! to in-process `TrajDb` execution — for a mixed heterogeneous batch,
//! across every storage layout the façade auto-detects (owned
//! snapshot, mmap snapshot, shard directory, quantized snapshot), in
//! both execution modes — and the admission layer routes coalesced
//! results back to the right connection.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;

use traj_query::{
    DbOptions, Dissimilarity, KnnQuery, Query, QueryBatch, QueryExecutor, QueryResult,
    SimilarityQuery, TrajDb,
};
use traj_serve::wire::{encode_message, Message};
use traj_serve::{BatchConfig, Client, ExecutionMode, ServeOptions, Server};
use trajectory::gen::{generate, DatasetSpec, Scale};
use trajectory::shard::{partition, PartitionStrategy, ShardSet};
use trajectory::snapshot::{write_snapshot_quantized, write_snapshot_with};
use trajectory::{KeptBitmap, TrajectoryDb};

fn unique_path(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join("qdts_loopback_tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(format!(
        "{tag}_{}_{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ))
}

fn dataset() -> TrajectoryDb {
    generate(&DatasetSpec::tdrive(Scale::Smoke).with_trajectories(24), 3)
}

/// A batch exercising every query variant (both kNN measures included).
fn mixed_batch(db: &TrajectoryDb) -> QueryBatch {
    let bounds = db.bounding_cube();
    let mid_t = (bounds.t_min + bounds.t_max) / 2.0;
    let cube = trajectory::Cube::new(
        bounds.x_min,
        (bounds.x_min + bounds.x_max) / 2.0,
        bounds.y_min,
        (bounds.y_min + bounds.y_max) / 2.0,
        bounds.t_min,
        mid_t,
    );
    let probe = db.get(0).clone();
    let ts = bounds.t_min;
    let te = mid_t;
    QueryBatch::from_queries(vec![
        Query::Range(cube),
        Query::Knn(KnnQuery {
            query: probe.clone(),
            ts,
            te,
            k: 3,
            measure: Dissimilarity::Edr { eps: 2_000.0 },
        }),
        Query::Knn(KnnQuery {
            query: probe.clone(),
            ts,
            te,
            k: 2,
            measure: Dissimilarity::t2vec_default(),
        }),
        Query::Similarity(SimilarityQuery {
            query: probe,
            ts,
            te,
            delta: 5_000.0,
            step: 600.0,
        }),
        Query::RangeKept(cube),
    ])
}

/// Writes the four on-disk layouts and returns (label, path, options)
/// triples whose `TrajDb::open` covers owned / mmap / sharded /
/// quantized openings.
fn layouts(db: &TrajectoryDb) -> Vec<(&'static str, PathBuf, DbOptions)> {
    let store = db.to_store();
    let n = store.total_points();
    // Keep every other point: a valid simplified database D' so
    // RangeKept answers Some over the snapshot layouts.
    let mut bitmap = KeptBitmap::zeros(n);
    for g in (0..n).step_by(2) {
        bitmap.insert(g as u32);
    }

    let snap = unique_path("loopback").with_extension("snap");
    write_snapshot_with(&store, Some(&bitmap), &snap).expect("write snapshot");

    let qsnap = unique_path("loopback_q").with_extension("snap");
    write_snapshot_quantized(&store, Some(&bitmap), 1e-3, &qsnap).expect("write quantized");

    let shard_dir = unique_path("loopback_shards");
    let shards = partition(&store, &PartitionStrategy::Hash { parts: 3 });
    ShardSet::write(&shard_dir, &shards).expect("write shards");

    vec![
        ("owned snapshot", snap.clone(), DbOptions::new().owned()),
        ("mmap snapshot", snap, DbOptions::new().mapped()),
        ("shard directory", shard_dir, DbOptions::new()),
        ("quantized snapshot", qsnap, DbOptions::new()),
    ]
}

#[test]
fn loopback_matches_in_process_on_every_layout_and_mode() {
    let db = dataset();
    let batch = mixed_batch(&db);
    let modes: [(&str, ExecutionMode); 2] = [
        ("per-request", ExecutionMode::PerRequest),
        ("batched", ExecutionMode::Batched(BatchConfig::default())),
    ];
    let layouts = layouts(&db);
    for (label, path, opts) in &layouts {
        let (path, opts) = (path.clone(), *opts);
        let expected = TrajDb::open(&path, opts)
            .expect("open for in-process baseline")
            .execute_batch(&batch);
        for (mode_label, mode) in modes {
            let server = Server::open(
                &path,
                opts,
                "127.0.0.1:0",
                ServeOptions { mode, executors: 1 },
            )
            .expect("open + serve");
            let mut client = Client::connect(server.local_addr()).expect("connect");
            let got = client.execute_batch(&batch).expect("remote batch");
            assert_eq!(
                got, expected,
                "layout `{label}`, mode `{mode_label}`: wire results diverge"
            );
            // Byte-identical on the wire, not merely equal in memory:
            // re-encoding both sides gives the same frame.
            assert_eq!(
                encode_message(&Message::Response(got)),
                encode_message(&Message::Response(expected.clone())),
                "layout `{label}`, mode `{mode_label}`: encodings diverge"
            );
            server.shutdown();
        }
    }
    // The owned- and mmap-snapshot layouts share one file, so clean up
    // only after every layout has been exercised.
    for (_, path, _) in layouts {
        if path.is_dir() {
            std::fs::remove_dir_all(&path).ok();
        } else {
            std::fs::remove_file(&path).ok();
        }
    }
}

/// Many concurrent connections, each with a *different* query: the
/// admission layer must coalesce them into shared passes (linger makes
/// that overwhelmingly likely) yet route every result back to the
/// connection that asked.
#[test]
fn batched_admission_routes_results_to_the_right_connection() {
    let db = dataset();
    let store = db.to_store();
    let served = TrajDb::from_store(store, DbOptions::new());
    let in_process = TrajDb::from_store(db.to_store(), DbOptions::new());

    let bounds = db.bounding_cube();
    let clients = 8;
    let rounds = 6;
    // Per-client distinct range cubes (different x-slices).
    let queries: Vec<Query> = (0..clients)
        .map(|c| {
            let w = (bounds.x_max - bounds.x_min) / clients as f64;
            let x0 = bounds.x_min + c as f64 * w;
            Query::Range(trajectory::Cube::new(
                x0,
                x0 + w,
                bounds.y_min,
                bounds.y_max,
                bounds.t_min,
                bounds.t_max,
            ))
        })
        .collect();
    let expected: Vec<QueryResult> = queries.iter().map(|q| in_process.execute_one(q)).collect();

    let server = Server::start(
        served,
        "127.0.0.1:0",
        ServeOptions {
            mode: ExecutionMode::Batched(BatchConfig {
                max_queries: 64,
                linger: std::time::Duration::from_millis(2),
            }),
            executors: 2,
        },
    )
    .expect("start server");
    let addr = server.local_addr();

    let barrier = Barrier::new(clients);
    std::thread::scope(|scope| {
        for (q, want) in queries.iter().zip(&expected) {
            let barrier = &barrier;
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                barrier.wait();
                for _ in 0..rounds {
                    let got = client.execute(q).expect("remote query");
                    assert_eq!(&got, want, "result routed to the wrong connection");
                }
            });
        }
    });

    let stats = server.stats();
    assert_eq!(stats.requests, (clients * rounds) as u64);
    assert_eq!(stats.queries, (clients * rounds) as u64);
    // The linger window actually coalesced concurrent connections.
    assert!(
        stats.mean_batch_size() > 1.0,
        "no coalescing happened (mean batch {})",
        stats.mean_batch_size()
    );
    server.shutdown();
}

/// Corrupt frames get a typed error frame back; the protocol never
/// hangs the connection.
#[test]
fn corrupt_request_is_answered_with_an_error_frame() {
    use std::io::{Read, Write};

    let db = dataset();
    let served = TrajDb::from_store(db.to_store(), DbOptions::new());
    let server = Server::start(served, "127.0.0.1:0", ServeOptions::batched()).expect("start");

    let mut raw = std::net::TcpStream::connect(server.local_addr()).expect("connect");
    let mut frame = encode_message(&Message::Request(QueryBatch::new()));
    let last = frame.len() - 1;
    frame[last] ^= 0x40; // break the checksum
    raw.write_all(&frame).expect("send corrupt frame");
    let reply = traj_serve::wire::read_message(&mut raw)
        .expect("typed error frame")
        .expect("frame, not EOF");
    match reply {
        Message::Error { code, .. } => {
            assert_eq!(code, traj_serve::server::ERR_BAD_REQUEST);
        }
        other => panic!("expected an error frame, got {other:?}"),
    }
    // Server closed the stream after the error: next read is EOF.
    let mut buf = [0u8; 1];
    assert_eq!(raw.read(&mut buf).expect("clean close"), 0);
    server.shutdown();
}
