//! Load generator for the wire-format query server: N concurrent
//! simulated clients driving a mixed range/kNN/similarity workload
//! against each [`ExecutionMode`], reporting throughput and
//! p50/p95/p99 latency so "batched admission vs per-request
//! execution" is a measured number, not a claim.
//!
//! ```text
//! traj_bench_client [--clients 64] [--requests 50] [--mode both]
//!                   [--seed 7] [--trajectories 1000]
//!                   [--max-batch 256] [--linger-us 100]
//!                   [--cluster 0] [--writers 0]
//!                   [--out BENCH_serve.json] [--date YYYY-MM-DD]
//! ```
//!
//! `--writers N` additionally benchmarks the live-ingestion path: the
//! same dataset served from a WAL-backed `GenerationalDb` (with its
//! background compactor running), first read-only as a baseline and
//! then with N writer connections streaming ingest batches for the
//! whole read run — so "queries stay fast while writes land" is a
//! measured p99 ratio, not a claim.
//!
//! Each request carries one query (80% range, 10% kNN/EDR, 10%
//! similarity — the paper's §III-B mix). Per-request mode answers it
//! with a freshly spawned engine pass; batched mode coalesces requests
//! arriving concurrently across all connections into shared
//! heterogeneous engine passes.
//!
//! `--cluster N` additionally benchmarks the distributed path: the
//! dataset is time-partitioned into N shards each served by a spawned
//! `shardd` child process, and every simulated client submits to one
//! shared, coalescing [`SharedCoordinator`] — concurrent requests ride
//! the same bound-pruned wire round per shard, pipelined over pooled
//! connections — so the reported numbers include the full admission,
//! routing, fan-out, and global-merge path, and the JSON records the
//! coordinator's coalescing and pruned-frame counters.

use std::io::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use traj_query::{
    range_workload, spawn_compactor, DbOptions, Dissimilarity, GenerationalDb, KnnQuery, Query,
    QueryBatch, QueryDistribution, RangeWorkloadSpec, SimilarityQuery, TrajDb,
};
use traj_serve::{
    BatchConfig, Client, Coordinator, CoordinatorOptions, CoordinatorStats, ExecutionMode,
    Placement, ResponseStatus, ServeOptions, Server, SharedCoordinator,
};
use trajectory::gen::{generate, DatasetSpec, Scale};
use trajectory::shard::{partition, PartitionStrategy, ShardSet};
use trajectory::{KeepAll, Trajectory, TrajectoryDb};

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn flag_parse<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    flag_value(args, flag)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Builds the mixed workload: one query per request, deterministic in
/// `seed`. 80% range (paper-default 2 km × 7 day cubes anchored on
/// data), 10% kNN (EDR, k = 3, 1 h window), 10% similarity (δ = 5 km,
/// 10 min step, 1 h window).
fn build_workload(db: &TrajectoryDb, total: usize, seed: u64) -> Vec<Query> {
    let mut rng = StdRng::seed_from_u64(seed);
    let spec = RangeWorkloadSpec::paper_default(total, QueryDistribution::Data);
    let cubes = range_workload(db, &spec, &mut rng);
    let bounds = db.bounding_cube();
    let m = db.len();
    let window = 3_600.0;
    let mut queries = Vec::with_capacity(total);
    for (i, cube) in cubes.into_iter().enumerate() {
        let roll = i % 10;
        if roll < 8 {
            queries.push(Query::Range(cube));
            continue;
        }
        let traj = db.get(rng.gen_range(0..m)).clone();
        let ts = traj.points().first().map(|p| p.t).unwrap_or(bounds.t_min);
        let te = (ts + window).min(bounds.t_max);
        if roll == 8 {
            queries.push(Query::Knn(KnnQuery {
                query: traj,
                ts,
                te,
                k: 3,
                measure: Dissimilarity::Edr { eps: 2_000.0 },
            }));
        } else {
            queries.push(Query::Similarity(SimilarityQuery {
                query: traj,
                ts,
                te,
                delta: 5_000.0,
                step: 600.0,
            }));
        }
    }
    queries
}

struct ModeReport {
    label: &'static str,
    requests: usize,
    elapsed_s: f64,
    throughput_rps: f64,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
    mean_us: f64,
    mean_batch: f64,
    /// Coordinator counters — cluster mode only.
    cluster_stats: Option<CoordinatorStats>,
    /// Writer-side counters — live-ingest mode only.
    ingest_stats: Option<IngestBenchStats>,
}

/// What the concurrent writers did while the read latencies above were
/// being measured.
struct IngestBenchStats {
    writers: usize,
    batches: u64,
    trajs: u64,
    points: u64,
    write_mean_us: f64,
    write_p50_us: f64,
    write_p99_us: f64,
    writes_per_s: f64,
    /// Snapshot generations the background compactor committed during
    /// the run.
    generations: u64,
}

fn percentile(sorted_us: &[f64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_us.len() as f64 * p).ceil() as usize).clamp(1, sorted_us.len()) - 1;
    sorted_us[idx]
}

/// Runs one mode: fresh server on a loopback port, `clients` threads
/// each issuing its share of `workload` as single-query requests.
fn run_mode(
    db: TrajDb,
    mode: ExecutionMode,
    label: &'static str,
    workload: &[Query],
    clients: usize,
) -> ModeReport {
    let opts = ServeOptions { mode, executors: 1 };
    let server = Server::start(db, "127.0.0.1:0", opts).expect("bind loopback");
    let addr = server.local_addr();
    let barrier = Barrier::new(clients + 1);
    let shares: Vec<&[Query]> = (0..clients)
        .map(|c| {
            let per = workload.len() / clients;
            &workload[c * per..(c + 1) * per]
        })
        .collect();

    let mut latencies_us: Vec<f64> = Vec::with_capacity(workload.len());
    let barrier = &barrier;
    let (collected, elapsed) = std::thread::scope(|scope| {
        let handles: Vec<_> = shares
            .iter()
            .map(|share| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let mut lat = Vec::with_capacity(share.len());
                    barrier.wait();
                    for q in *share {
                        let batch = QueryBatch::from_queries(vec![q.clone()]);
                        let t0 = Instant::now();
                        let results = client.execute_batch(&batch).expect("request failed");
                        lat.push(t0.elapsed().as_secs_f64() * 1e6);
                        assert_eq!(results.len(), 1, "one result per query");
                    }
                    lat
                })
            })
            .collect();
        barrier.wait();
        let started = Instant::now();
        let collected: Vec<Vec<f64>> = handles
            .into_iter()
            .map(|h| h.join().expect("client thread panicked"))
            .collect();
        (collected, started.elapsed())
    });
    for lat in collected {
        latencies_us.extend(lat);
    }

    let stats = server.stats();
    server.shutdown();
    latencies_us.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let requests = latencies_us.len();
    let elapsed_s = elapsed.as_secs_f64();
    ModeReport {
        label,
        requests,
        elapsed_s,
        throughput_rps: requests as f64 / elapsed_s,
        p50_us: percentile(&latencies_us, 0.50),
        p95_us: percentile(&latencies_us, 0.95),
        p99_us: percentile(&latencies_us, 0.99),
        mean_us: latencies_us.iter().sum::<f64>() / requests.max(1) as f64,
        mean_batch: stats.mean_batch_size(),
        cluster_stats: None,
        ingest_stats: None,
    }
}

/// Benchmarks the live-ingestion path: the dataset is served from a
/// WAL-backed [`GenerationalDb`] (background compactor running), the
/// usual reader threads measure query latency, and `writers` extra
/// connections stream 8-trajectory ingest batches while the readers
/// run. Writers are paced (a short sleep between acked batches, like a
/// telemetry fleet reporting on an interval) and budgeted (a hard cap
/// on batches per writer) so the delta grows at a realistic bounded
/// rate instead of however fast `fsync` allows — unthrottled writers on
/// a fast temp filesystem can outrun compaction without bound. With
/// `writers == 0` this is the read-only baseline over the identical
/// serving stack, so the p99 ratio isolates exactly the cost of
/// concurrent writes.
/// Hard cap on acked batches per writer connection (8 trajectories
/// each) — bounds the WAL/delta no matter how long the read run lasts.
const WRITER_BATCH_BUDGET: usize = 256;

/// Sleep between a writer's acked batches: the arrival cadence of a
/// device fleet, and the throttle that keeps ingest from degenerating
/// into an fsync speed test.
const WRITER_PACE: Duration = Duration::from_millis(4);

fn run_live(
    db: &TrajectoryDb,
    label: &'static str,
    workload: &[Query],
    clients: usize,
    writers: usize,
    batch_cfg: BatchConfig,
) -> ModeReport {
    let dir =
        std::env::temp_dir().join(format!("qdts_bench_live_{}_{}", std::process::id(), label));
    let _ = std::fs::remove_dir_all(&dir);
    let gdb = Arc::new(
        GenerationalDb::create(
            &dir,
            &db.to_store(),
            DbOptions::new(),
            Box::new(|| Box::new(KeepAll)),
        )
        .expect("create live db"),
    );
    // A low fold threshold keeps the resident delta small for the whole
    // run, so merged-view reads measure steady-state serving rather
    // than an ever-growing unfolded tail.
    let compactor = spawn_compactor(Arc::clone(&gdb), 50_000, Duration::from_millis(100));
    let opts = ServeOptions {
        mode: ExecutionMode::Batched(batch_cfg),
        executors: 1,
    };
    let server = Server::start(Arc::clone(&gdb), "127.0.0.1:0", opts).expect("bind loopback");
    let addr = server.local_addr();

    // Writers cycle through pre-generated batches so trajectory
    // generation cost never pollutes the measured ack latency.
    let pools: Vec<Vec<Trajectory>> = (0..writers)
        .map(|w| {
            generate(
                &DatasetSpec::tdrive(Scale::Smoke).with_trajectories(64),
                900 + w as u64,
            )
            .iter()
            .map(|(_, t)| t.clone())
            .collect()
        })
        .collect();

    let stop = AtomicBool::new(false);
    let barrier = Barrier::new(clients + writers + 1);
    let shares: Vec<&[Query]> = (0..clients)
        .map(|c| {
            let per = workload.len() / clients;
            &workload[c * per..(c + 1) * per]
        })
        .collect();

    let stop = &stop;
    let barrier = &barrier;
    let (read_lats, write_lats, trajs, points, elapsed, write_elapsed_s) =
        std::thread::scope(|scope| {
            let readers: Vec<_> = shares
                .iter()
                .map(|share| {
                    scope.spawn(move || {
                        let mut client = Client::connect(addr).expect("connect reader");
                        let mut lat = Vec::with_capacity(share.len());
                        barrier.wait();
                        for q in *share {
                            let batch = QueryBatch::from_queries(vec![q.clone()]);
                            let t0 = Instant::now();
                            let results = client.execute_batch(&batch).expect("read failed");
                            lat.push(t0.elapsed().as_secs_f64() * 1e6);
                            assert_eq!(results.len(), 1, "one result per query");
                        }
                        lat
                    })
                })
                .collect();
            let writer_handles: Vec<_> = pools
                .iter()
                .map(|pool| {
                    scope.spawn(move || {
                        let mut client = Client::connect(addr).expect("connect writer");
                        let mut lat = Vec::new();
                        let mut trajs = 0u64;
                        let mut points = 0u64;
                        let mut at = 0usize;
                        barrier.wait();
                        let started = Instant::now();
                        for _ in 0..WRITER_BATCH_BUDGET {
                            if stop.load(Ordering::Relaxed) {
                                break;
                            }
                            let end = (at + 8).min(pool.len());
                            let chunk = &pool[at..end];
                            at = if end == pool.len() { 0 } else { end };
                            let t0 = Instant::now();
                            let ack = client.ingest(chunk).expect("ingest failed");
                            lat.push(t0.elapsed().as_secs_f64() * 1e6);
                            trajs += u64::from(ack.accepted);
                            points += chunk.iter().map(|t| t.len() as u64).sum::<u64>();
                            std::thread::sleep(WRITER_PACE);
                        }
                        (lat, trajs, points, started.elapsed().as_secs_f64())
                    })
                })
                .collect();
            barrier.wait();
            let started = Instant::now();
            let read_lats: Vec<Vec<f64>> = readers
                .into_iter()
                .map(|h| h.join().expect("reader panicked"))
                .collect();
            let elapsed = started.elapsed();
            stop.store(true, Ordering::Relaxed);
            let mut write_lats = Vec::new();
            let mut trajs = 0u64;
            let mut points = 0u64;
            let mut write_elapsed_s = 0f64;
            for h in writer_handles {
                let (lat, t, p, secs) = h.join().expect("writer panicked");
                write_lats.extend(lat);
                trajs += t;
                points += p;
                write_elapsed_s = write_elapsed_s.max(secs);
            }
            (
                read_lats,
                write_lats,
                trajs,
                points,
                elapsed,
                write_elapsed_s,
            )
        });

    let generations = gdb.generation();
    let server_stats = server.stats();
    server.shutdown();
    compactor.shutdown();
    let _ = std::fs::remove_dir_all(&dir);

    let mut latencies_us: Vec<f64> = read_lats.into_iter().flatten().collect();
    latencies_us.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let requests = latencies_us.len();
    let elapsed_s = elapsed.as_secs_f64();

    let ingest_stats = (writers > 0).then(|| {
        let mut sorted = write_lats.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        let batches = sorted.len() as u64;
        IngestBenchStats {
            writers,
            batches,
            trajs,
            points,
            write_mean_us: sorted.iter().sum::<f64>() / (batches.max(1)) as f64,
            write_p50_us: percentile(&sorted, 0.50),
            write_p99_us: percentile(&sorted, 0.99),
            writes_per_s: if write_elapsed_s > 0.0 {
                batches as f64 / write_elapsed_s
            } else {
                0.0
            },
            generations,
        }
    });

    ModeReport {
        label,
        requests,
        elapsed_s,
        throughput_rps: requests as f64 / elapsed_s,
        p50_us: percentile(&latencies_us, 0.50),
        p95_us: percentile(&latencies_us, 0.95),
        p99_us: percentile(&latencies_us, 0.99),
        mean_us: latencies_us.iter().sum::<f64>() / requests.max(1) as f64,
        mean_batch: server_stats.mean_batch_size(),
        cluster_stats: None,
        ingest_stats,
    }
}

/// Executor threads draining the shared coordinator's admission queue
/// in cluster mode — the pipeline depth: how many coalesced wire
/// rounds stay in flight over the pooled shard connections. Extra
/// in-flight rounds only pay off when coordinator-side merge work can
/// overlap shard execution on other cores; on a single core they just
/// split the admission queue into smaller, less amortized rounds.
fn cluster_executors() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get().clamp(1, 4))
}

/// Benchmarks the distributed path: time-partitions the dataset into
/// `shards` snapshot files served by spawned `shardd` children (all
/// started first, READY waited afterwards, so they load in parallel),
/// then has every client thread submit to one shared, coalescing
/// [`SharedCoordinator`] — concurrent requests ride the same
/// bound-pruned, pipelined wire round per shard. Time partitioning is
/// what gives bound-pruned routing leverage here: the taxis roam the
/// whole city, so spatial grid cells produce near-identical bounding
/// cubes, but per-shard time spans are mostly disjoint and the
/// workload's one-hour kNN/similarity windows route to only the
/// shards whose span they overlap.
fn run_cluster(
    db: &TrajectoryDb,
    shards: usize,
    workload: &[Query],
    clients: usize,
    batch_cfg: BatchConfig,
) -> ModeReport {
    use std::io::BufRead as _;
    use std::process::{Child, ChildStdout, Command, Stdio};

    let dir = std::env::temp_dir().join(format!("qdts_bench_cluster_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = db.to_store();
    let parts = partition(&store, &PartitionStrategy::Time { parts: shards });
    let set = ShardSet::write(&dir, &parts).expect("write shard dir");

    // shardd sits next to this binary in the target directory.
    let shardd = std::env::current_exe()
        .expect("current exe")
        .with_file_name("shardd");
    // Spawn every child before waiting for any READY line, so the
    // shards load their snapshots concurrently instead of serially.
    let mut children: Vec<Child> = Vec::new();
    let mut stdouts: Vec<ChildStdout> = Vec::new();
    for e in set.entries() {
        let mut child = Command::new(&shardd)
            .arg("--snap")
            .arg(dir.join(&e.file))
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn shardd (build it with `cargo build --release -p traj-serve --bins`)");
        stdouts.push(child.stdout.take().expect("piped stdout"));
        children.push(child);
    }
    let mut placement_parts = Vec::new();
    for (e, stdout) in set.entries().iter().zip(stdouts) {
        let mut line = String::new();
        std::io::BufReader::new(stdout)
            .read_line(&mut line)
            .expect("shardd READY line");
        let addr = line
            .trim()
            .strip_prefix("READY ")
            .expect("shardd greeting")
            .to_string();
        placement_parts.push((addr, e.global_ids.clone()));
    }
    let placement = Placement::from_parts(placement_parts).expect("placement");

    let coordinator =
        Coordinator::connect(placement, CoordinatorOptions::default()).expect("connect cluster");
    let shared = SharedCoordinator::start(coordinator, batch_cfg, cluster_executors());

    let barrier = Barrier::new(clients + 1);
    let shares: Vec<&[Query]> = (0..clients)
        .map(|c| {
            let per = workload.len() / clients;
            &workload[c * per..(c + 1) * per]
        })
        .collect();
    let barrier = &barrier;
    let shared_ref = &shared;
    let (collected, elapsed) = std::thread::scope(|scope| {
        let handles: Vec<_> = shares
            .iter()
            .map(|share| {
                scope.spawn(move || {
                    let mut lat = Vec::with_capacity(share.len());
                    barrier.wait();
                    for q in *share {
                        let batch = QueryBatch::from_queries(vec![q.clone()]);
                        let t0 = Instant::now();
                        let response = shared_ref.execute_batch(&batch).expect("cluster request");
                        lat.push(t0.elapsed().as_secs_f64() * 1e6);
                        assert_eq!(response.status, ResponseStatus::Complete);
                        assert_eq!(response.results.len(), 1, "one result per query");
                    }
                    lat
                })
            })
            .collect();
        barrier.wait();
        let started = Instant::now();
        let collected: Vec<Vec<f64>> = handles
            .into_iter()
            .map(|h| h.join().expect("client thread panicked"))
            .collect();
        (collected, started.elapsed())
    });

    let stats = shared.stats();
    shared.shutdown();
    for child in &mut children {
        let _ = child.kill();
        let _ = child.wait();
    }
    let _ = std::fs::remove_dir_all(&dir);

    let mut latencies_us: Vec<f64> = collected.into_iter().flatten().collect();
    latencies_us.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let requests = latencies_us.len();
    let elapsed_s = elapsed.as_secs_f64();
    ModeReport {
        label: "cluster",
        requests,
        elapsed_s,
        throughput_rps: requests as f64 / elapsed_s,
        p50_us: percentile(&latencies_us, 0.50),
        p95_us: percentile(&latencies_us, 0.95),
        p99_us: percentile(&latencies_us, 0.99),
        mean_us: latencies_us.iter().sum::<f64>() / requests.max(1) as f64,
        mean_batch: stats.mean_coalesced_batch(),
        cluster_stats: Some(stats),
        ingest_stats: None,
    }
}

fn mode_json(r: &ModeReport) -> String {
    let mut block = format!(
        concat!(
            "    \"{}\": {{\n",
            "      \"requests\": {},\n",
            "      \"elapsed_s\": {:.3},\n",
            "      \"throughput_rps\": {:.0},\n",
            "      \"latency_us\": {{ \"mean\": {:.1}, \"p50\": {:.1}, \"p95\": {:.1}, \"p99\": {:.1} }},\n",
            "      \"mean_coalesced_batch\": {:.2}"
        ),
        r.label, r.requests, r.elapsed_s, r.throughput_rps, r.mean_us, r.p50_us, r.p95_us,
        r.p99_us, r.mean_batch,
    );
    if let Some(stats) = &r.cluster_stats {
        let per_shard: Vec<String> = stats
            .shards
            .iter()
            .map(|s| {
                format!(
                    "{{ \"sent\": {}, \"pruned\": {} }}",
                    s.frames_sent, s.frames_pruned
                )
            })
            .collect();
        block.push_str(&format!(
            concat!(
                ",\n",
                "      \"coalesced_rounds\": {},\n",
                "      \"frames\": {{\n",
                "        \"sent\": {},\n",
                "        \"pruned\": {},\n",
                "        \"per_shard\": [{}]\n",
                "      }}"
            ),
            stats.rounds,
            stats.frames_sent(),
            stats.frames_pruned(),
            per_shard.join(", "),
        ));
    }
    if let Some(w) = &r.ingest_stats {
        block.push_str(&format!(
            concat!(
                ",\n",
                "      \"ingest\": {{\n",
                "        \"writers\": {},\n",
                "        \"batches_acked\": {},\n",
                "        \"trajectories_written\": {},\n",
                "        \"points_written\": {},\n",
                "        \"write_latency_us\": {{ \"mean\": {:.1}, \"p50\": {:.1}, \"p99\": {:.1} }},\n",
                "        \"write_batches_per_s\": {:.0},\n",
                "        \"compactions_committed\": {}\n",
                "      }}"
            ),
            w.writers,
            w.batches,
            w.trajs,
            w.points,
            w.write_mean_us,
            w.write_p50_us,
            w.write_p99_us,
            w.writes_per_s,
            w.generations,
        ));
    }
    block.push_str("\n    }");
    block
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let clients: usize = flag_parse(&args, "--clients", 64);
    let requests: usize = flag_parse(&args, "--requests", 50);
    let seed: u64 = flag_parse(&args, "--seed", 7);
    let trajectories: usize = flag_parse(&args, "--trajectories", 1000);
    let max_batch: usize = flag_parse(&args, "--max-batch", 256);
    let linger_us: u64 = flag_parse(&args, "--linger-us", 100);
    let cluster: usize = flag_parse(&args, "--cluster", 0);
    let writers: usize = flag_parse(&args, "--writers", 0);
    let mode = flag_value(&args, "--mode").unwrap_or("both").to_owned();
    let out = flag_value(&args, "--out")
        .unwrap_or("BENCH_serve.json")
        .to_owned();
    let date = flag_value(&args, "--date").unwrap_or("unknown").to_owned();

    let spec = DatasetSpec::tdrive(Scale::Small).with_trajectories(trajectories);
    let db = generate(&spec, 7);
    let points: usize = db.iter().map(|(_, t)| t.len()).sum();
    eprintln!(
        "dataset: {} trajectories, {} points; {} clients x {} requests",
        db.len(),
        points,
        clients,
        requests
    );
    let workload = build_workload(&db, clients * requests, seed);

    let batch_cfg = BatchConfig {
        max_queries: max_batch,
        linger: std::time::Duration::from_micros(linger_us),
    };
    let mut reports: Vec<ModeReport> = Vec::new();
    if mode == "both" || mode == "per-request" {
        let served = TrajDb::from_db(&db, DbOptions::new());
        let r = run_mode(
            served,
            ExecutionMode::PerRequest,
            "per_request",
            &workload,
            clients,
        );
        eprintln!(
            "per-request: {:.0} req/s, p50 {:.0}us p95 {:.0}us p99 {:.0}us",
            r.throughput_rps, r.p50_us, r.p95_us, r.p99_us
        );
        reports.push(r);
    }
    if mode == "both" || mode == "batched" {
        let served = TrajDb::from_db(&db, DbOptions::new());
        let r = run_mode(
            served,
            ExecutionMode::Batched(batch_cfg),
            "batched",
            &workload,
            clients,
        );
        eprintln!(
            "batched:     {:.0} req/s, p50 {:.0}us p95 {:.0}us p99 {:.0}us, mean batch {:.1}",
            r.throughput_rps, r.p50_us, r.p95_us, r.p99_us, r.mean_batch
        );
        reports.push(r);
    }
    if cluster > 0 {
        let r = run_cluster(&db, cluster, &workload, clients, batch_cfg);
        eprintln!(
            "cluster({cluster}): {:.0} req/s, p50 {:.0}us p95 {:.0}us p99 {:.0}us, mean coalesced {:.1}",
            r.throughput_rps, r.p50_us, r.p95_us, r.p99_us, r.mean_batch
        );
        reports.push(r);
    }
    if writers > 0 {
        let baseline = run_live(&db, "live_read_only", &workload, clients, 0, batch_cfg);
        eprintln!(
            "live read-only: {:.0} req/s, p50 {:.0}us p95 {:.0}us p99 {:.0}us",
            baseline.throughput_rps, baseline.p50_us, baseline.p95_us, baseline.p99_us
        );
        let mixed = run_live(&db, "live_ingest", &workload, clients, writers, batch_cfg);
        let w = mixed.ingest_stats.as_ref().expect("writers ran");
        eprintln!(
            "live +{writers} writers: {:.0} req/s, p50 {:.0}us p95 {:.0}us p99 {:.0}us; \
             {} trajs ({} pts) written in {} acked batches, write p99 {:.0}us, \
             {} compactions",
            mixed.throughput_rps,
            mixed.p50_us,
            mixed.p95_us,
            mixed.p99_us,
            w.trajs,
            w.points,
            w.batches,
            w.write_p99_us,
            w.generations,
        );
        reports.push(baseline);
        reports.push(mixed);
    }

    let speedup = match (
        reports.iter().find(|r| r.label == "batched"),
        reports.iter().find(|r| r.label == "per_request"),
    ) {
        (Some(b), Some(p)) if p.throughput_rps > 0.0 => {
            let s = b.throughput_rps / p.throughput_rps;
            eprintln!("throughput: batched / per-request = {s:.2}x");
            Some(s)
        }
        _ => None,
    };
    let ingest_p99_ratio = match (
        reports.iter().find(|r| r.label == "live_ingest"),
        reports.iter().find(|r| r.label == "live_read_only"),
    ) {
        (Some(m), Some(b)) if b.p99_us > 0.0 => {
            let s = m.p99_us / b.p99_us;
            eprintln!("read p99 under ingest / read-only p99 = {s:.2}x");
            Some(s)
        }
        _ => None,
    };

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(
        "  \"title\": \"Wire-format query serving: batched admission vs per-request execution\",\n",
    );
    json.push_str(&format!("  \"date\": \"{date}\",\n"));
    json.push_str(
        "  \"source\": \"crates/traj-serve/src/bin/traj_bench_client.rs (release profile)\",\n",
    );
    json.push_str(&format!(
        concat!(
            "  \"config\": {{\n",
            "    \"clients\": {},\n",
            "    \"requests_per_client\": {},\n",
            "    \"workload\": \"1 query/request: 80% range (paper-default 2km x 7d, data-anchored), 10% knn (EDR, k=3, 1h window), 10% similarity (5km, 10min step, 1h window)\",\n",
            "    \"per_request_mode\": \"each request runs its own engine pass on a freshly spawned thread (thread-per-request baseline)\",\n",
            "    \"batched_mode\": \"admission queue + persistent executor coalescing concurrent requests into shared heterogeneous engine passes\",\n",
            "    \"max_batch_queries\": {},\n",
            "    \"linger_us\": {},\n",
            "    \"cluster_shards\": {},\n",
            "    \"cluster_mode\": \"time-partitioned shardd child processes behind one shared coalescing coordinator (admission/linger batching, bound-pruned routing over per-shard time spans, pipelined pooled connections, global merge); 0 = not benchmarked\",\n",
            "    \"writers\": {},\n",
            "    \"live_mode\": \"WAL-backed GenerationalDb serving (background compactor at 50k delta points): live_read_only is the baseline over the identical stack, live_ingest adds N connections streaming 8-trajectory ingest batches for the whole read run; 0 = not benchmarked\",\n",
            "    \"seed\": {}\n",
            "  }},\n"
        ),
        clients, requests, max_batch, linger_us, cluster, writers, seed
    ));
    json.push_str(&format!(
        concat!(
            "  \"dataset\": {{\n",
            "    \"spec\": \"DatasetSpec::tdrive(Scale::Small).with_trajectories({}), seed 7\",\n",
            "    \"trajectories\": {},\n",
            "    \"points\": {}\n",
            "  }},\n"
        ),
        trajectories,
        db.len(),
        points
    ));
    json.push_str("  \"modes\": {\n");
    let mode_blocks: Vec<String> = reports.iter().map(mode_json).collect();
    json.push_str(&mode_blocks.join(",\n"));
    json.push_str("\n  },\n");
    match speedup {
        Some(s) => json.push_str(&format!(
            "  \"batched_over_per_request_throughput\": {s:.2},\n"
        )),
        None => json.push_str("  \"batched_over_per_request_throughput\": null,\n"),
    }
    match ingest_p99_ratio {
        Some(s) => json.push_str(&format!(
            "  \"read_p99_under_ingest_over_read_only\": {s:.2}\n"
        )),
        None => json.push_str("  \"read_p99_under_ingest_over_read_only\": null\n"),
    }
    json.push_str("}\n");

    let mut f = std::fs::File::create(&out).expect("create output file");
    f.write_all(json.as_bytes()).expect("write output file");
    eprintln!("wrote {out}");
}
