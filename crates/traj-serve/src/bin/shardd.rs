//! `shardd` — serves one shard's snapshot over the wire protocol.
//!
//! The smallest possible distributed building block: open one store
//! (snapshot, quantized snapshot, CSV — anything `TrajDb::open`
//! auto-detects), serve it, print `READY <addr>` on stdout, and run
//! until stdin reaches EOF (so a parent process that spawned us with a
//! piped stdin shuts us down just by closing the pipe — no signal
//! handling, no PID files). A `Coordinator` pointed at a fleet of
//! these is the distributed twin of opening the shard directory
//! in-process.
//!
//! With `--live <dir>` the shard serves a live, WAL-backed generational
//! database instead of an immutable snapshot: `Ingest` frames append
//! through the online simplifier (`--sed-eps` selects one-pass SED;
//! the default keeps every point), a background compactor folds the
//! delta into a new snapshot generation once it exceeds
//! `--compact-points`, and the directory is created on first launch /
//! recovered from its WALs on relaunch.
//!
//! ```text
//! shardd --snap shard-000.qdts [--addr 127.0.0.1:0] [--backend octree|kd|scan]
//!        [--mode auto|owned|mapped] [--per-request]
//! shardd --live state-dir [--sed-eps 25.0] [--compact-points 500000] [...]
//! ```

use std::io::{Read, Write};
use std::path::Path;
use std::process::exit;
use std::sync::Arc;
use std::time::Duration;

use traj_query::generational::GENS_MANIFEST;
use traj_query::{spawn_compactor, BackendKind, DbOptions, GenerationalDb, SimpFactory};
use traj_serve::{ServeOptions, Server};
use traj_simp::OnePassSed;
use trajectory::{KeepAll, PointStore};

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn usage() -> ! {
    eprintln!(
        "usage: shardd --snap <store> | --live <dir> [--addr host:port] \
         [--backend octree|kd|scan] [--mode auto|owned|mapped] [--per-request] \
         [--sed-eps <eps>] [--compact-points <n>]"
    );
    exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let snap = flag_value(&args, "--snap");
    let live = flag_value(&args, "--live");
    if snap.is_some() == live.is_some() {
        // Exactly one source: a snapshot to serve or a live directory.
        usage();
    }
    let addr = flag_value(&args, "--addr").unwrap_or_else(|| "127.0.0.1:0".to_string());

    let mut db_opts = DbOptions::new();
    match flag_value(&args, "--backend").as_deref() {
        None | Some("octree") => db_opts = db_opts.backend(BackendKind::Octree),
        Some("kd") => db_opts = db_opts.backend(BackendKind::MedianKd),
        Some("scan") => db_opts = db_opts.backend(BackendKind::Scan),
        Some(other) => {
            eprintln!("shardd: unknown --backend {other} (octree|kd|scan)");
            exit(2);
        }
    }
    match flag_value(&args, "--mode").as_deref() {
        None | Some("auto") => {}
        Some("owned") => db_opts = db_opts.owned(),
        Some("mapped") => db_opts = db_opts.mapped(),
        Some(other) => {
            eprintln!("shardd: unknown --mode {other} (auto|owned|mapped)");
            exit(2);
        }
    }
    let serve_opts = if args.iter().any(|a| a == "--per-request") {
        ServeOptions::per_request()
    } else {
        ServeOptions::batched()
    };

    // Kept alive for the whole serving run; dropping it (at exit)
    // signals the background compaction thread to stop and joins it.
    let mut compactor = None;

    let server = if let Some(dir) = live {
        let sed_eps = match flag_value(&args, "--sed-eps").map(|s| s.parse::<f64>()) {
            None => None,
            Some(Ok(eps)) if eps > 0.0 && eps.is_finite() => Some(eps),
            Some(_) => {
                eprintln!("shardd: --sed-eps wants a positive finite number");
                exit(2);
            }
        };
        let compact_points = match flag_value(&args, "--compact-points").map(|s| s.parse::<usize>())
        {
            None => 500_000,
            Some(Ok(n)) if n > 0 => n,
            Some(_) => {
                eprintln!("shardd: --compact-points wants a positive integer");
                exit(2);
            }
        };
        let factory: SimpFactory = match sed_eps {
            Some(eps) => Box::new(move || Box::new(OnePassSed::new(eps))),
            None => Box::new(|| Box::new(KeepAll)),
        };
        let opened = if Path::new(&dir).join(GENS_MANIFEST).exists() {
            GenerationalDb::open(&dir, db_opts, factory)
        } else {
            GenerationalDb::create(&dir, &PointStore::new(), db_opts, factory)
        };
        let db = match opened {
            Ok(db) => Arc::new(db),
            Err(e) => {
                eprintln!("shardd: cannot open live directory {dir}: {e}");
                exit(2);
            }
        };
        compactor = Some(spawn_compactor(
            Arc::clone(&db),
            compact_points,
            Duration::from_millis(250),
        ));
        match Server::start(db, addr.as_str(), serve_opts) {
            Ok(server) => server,
            Err(e) => {
                eprintln!("shardd: cannot serve live directory {dir}: {e}");
                exit(2);
            }
        }
    } else {
        let snap = snap.expect("checked: exactly one of --snap/--live");
        match Server::open(&snap, db_opts, addr.as_str(), serve_opts) {
            Ok(server) => server,
            Err(e) => {
                eprintln!("shardd: cannot serve {snap}: {e}");
                exit(2);
            }
        }
    };

    // The parent parses this line to learn the ephemeral port.
    println!("READY {}", server.local_addr());
    let _ = std::io::stdout().flush();

    // Serve until the parent closes our stdin (or we were launched
    // interactively and the terminal sends EOF).
    let mut sink = Vec::new();
    let _ = std::io::stdin().read_to_end(&mut sink);
    server.shutdown();
    if let Some(handle) = compactor.take() {
        handle.shutdown();
    }
}
