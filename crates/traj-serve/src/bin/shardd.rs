//! `shardd` — serves one shard's snapshot over the wire protocol.
//!
//! The smallest possible distributed building block: open one store
//! (snapshot, quantized snapshot, CSV — anything `TrajDb::open`
//! auto-detects), serve it, print `READY <addr>` on stdout, and run
//! until stdin reaches EOF (so a parent process that spawned us with a
//! piped stdin shuts us down just by closing the pipe — no signal
//! handling, no PID files). A `Coordinator` pointed at a fleet of
//! these is the distributed twin of opening the shard directory
//! in-process.
//!
//! ```text
//! shardd --snap shard-000.qdts [--addr 127.0.0.1:0] [--backend octree|kd|scan]
//!        [--mode auto|owned|mapped] [--per-request]
//! ```

use std::io::{Read, Write};
use std::process::exit;

use traj_query::{BackendKind, DbOptions};
use traj_serve::{ServeOptions, Server};

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(snap) = flag_value(&args, "--snap") else {
        eprintln!(
            "usage: shardd --snap <store> [--addr host:port] \
             [--backend octree|kd|scan] [--mode auto|owned|mapped] [--per-request]"
        );
        exit(2);
    };
    let addr = flag_value(&args, "--addr").unwrap_or_else(|| "127.0.0.1:0".to_string());

    let mut db_opts = DbOptions::new();
    match flag_value(&args, "--backend").as_deref() {
        None | Some("octree") => db_opts = db_opts.backend(BackendKind::Octree),
        Some("kd") => db_opts = db_opts.backend(BackendKind::MedianKd),
        Some("scan") => db_opts = db_opts.backend(BackendKind::Scan),
        Some(other) => {
            eprintln!("shardd: unknown --backend {other} (octree|kd|scan)");
            exit(2);
        }
    }
    match flag_value(&args, "--mode").as_deref() {
        None | Some("auto") => {}
        Some("owned") => db_opts = db_opts.owned(),
        Some("mapped") => db_opts = db_opts.mapped(),
        Some(other) => {
            eprintln!("shardd: unknown --mode {other} (auto|owned|mapped)");
            exit(2);
        }
    }
    let serve_opts = if args.iter().any(|a| a == "--per-request") {
        ServeOptions::per_request()
    } else {
        ServeOptions::batched()
    };

    let server = match Server::open(&snap, db_opts, addr.as_str(), serve_opts) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("shardd: cannot serve {snap}: {e}");
            exit(2);
        }
    };

    // The parent parses this line to learn the ephemeral port.
    println!("READY {}", server.local_addr());
    let _ = std::io::stdout().flush();

    // Serve until the parent closes our stdin (or we were launched
    // interactively and the terminal sends EOF).
    let mut sink = Vec::new();
    let _ = std::io::stdin().read_to_end(&mut sink);
    server.shutdown();
}
