//! Multi-threaded TCP server fronting one shared [`TrajDb`].
//!
//! One listener thread accepts connections; each connection gets a
//! handler thread that reads framed requests and writes framed
//! responses. What happens *between* read and write is the point of
//! this module — the [`ExecutionMode`]:
//!
//! - [`ExecutionMode::PerRequest`] is the naive architecture: every
//!   request runs its own engine pass on a freshly spawned thread
//!   (thread-per-request). Request count × (spawn + schedule + join)
//!   overhead, and no work sharing between concurrent requests.
//! - [`ExecutionMode::Batched`] is the admission/batching layer:
//!   handler threads enqueue their queries into a shared admission
//!   queue and a small pool of persistent executor threads coalesces
//!   everything that arrived concurrently — across *all* connections —
//!   into one heterogeneous [`QueryBatch`] executed in a single
//!   work-stealing `execute_batch` pass. A bounded batch size and a
//!   microsecond-scale linger window trade a little queueing delay for
//!   much better per-query overhead; results are routed back to each
//!   waiting connection in submission order.
//!
//! The database is opened once and shared immutably (`TrajDb` is
//! `Send + Sync`; the static assertion below keeps that honest), so
//! every layout the façade auto-detects — CSV, snapshot, quantized
//! snapshot, shard directory — serves over the wire unchanged.

use std::collections::VecDeque;
use std::io::Write;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, SyncSender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use traj_query::{
    DbOptions, GenerationalDb, IngestReport, Query, QueryBatch, QueryExecutor, QueryResult, TrajDb,
    TrajDbError,
};
use trajectory::Trajectory;

use crate::wire::{
    read_message, write_message, IngestAck, Message, ShardInfo, ShardResult, WireError,
};

// The database must stay shareable across connection handler threads;
// if a future backend loses Send/Sync this fails to compile right here
// instead of deep inside a thread spawn.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<TrajDb>();
    assert_send_sync::<ServeDb>();
};

/// Error code sent to clients when their frame could not be decoded.
pub const ERR_BAD_REQUEST: u16 = 1;
/// Error code sent to clients when the message kind is not a request.
pub const ERR_NOT_A_REQUEST: u16 = 2;
/// Error code sent to clients that send `Ingest` to a server fronting
/// an immutable snapshot (no WAL-backed delta store to append to).
pub const ERR_READ_ONLY: u16 = 3;
/// Error code sent when a live server's ingest failed durably (WAL
/// write or sync error); nothing from the batch was acknowledged.
pub const ERR_INGEST_FAILED: u16 = 4;

/// The database behind a server: either an immutable snapshot-backed
/// [`TrajDb`] (queries only) or a live, WAL-backed [`GenerationalDb`]
/// that additionally accepts `Ingest` frames concurrently with queries.
///
/// `From` impls let [`Server::start`] take either directly, so existing
/// `Server::start(db, …)` call sites keep compiling.
pub enum ServeDb {
    /// Read-only store; `Ingest` frames are answered with
    /// [`ERR_READ_ONLY`].
    Static(TrajDb),
    /// Live generational database: writes are WAL-durable and visible
    /// to queries before the ack frame goes out.
    Live(Arc<GenerationalDb>),
}

impl From<TrajDb> for ServeDb {
    fn from(db: TrajDb) -> ServeDb {
        ServeDb::Static(db)
    }
}

impl From<Arc<GenerationalDb>> for ServeDb {
    fn from(db: Arc<GenerationalDb>) -> ServeDb {
        ServeDb::Live(db)
    }
}

impl From<GenerationalDb> for ServeDb {
    fn from(db: GenerationalDb) -> ServeDb {
        ServeDb::Live(Arc::new(db))
    }
}

impl ServeDb {
    /// The read-path executor — both layouts serve the identical
    /// [`QueryExecutor`] surface.
    fn executor(&self) -> &dyn QueryExecutor {
        match self {
            ServeDb::Static(db) => db,
            ServeDb::Live(db) => db.as_ref(),
        }
    }

    /// Smallest cube covering every served point (for the handshake).
    fn bounding_cube(&self) -> trajectory::Cube {
        match self {
            ServeDb::Static(db) => db.bounding_cube(),
            ServeDb::Live(db) => db.bounding_cube(),
        }
    }

    /// Appends a batch: `None` when this database is read-only,
    /// otherwise the delta store's report (or the I/O error).
    fn ingest(&self, trajs: &[Trajectory]) -> Option<std::io::Result<IngestReport>> {
        match self {
            ServeDb::Static(_) => None,
            ServeDb::Live(db) => Some(db.ingest(trajs)),
        }
    }
}

/// Tuning for [`ExecutionMode::Batched`].
#[derive(Debug, Clone, Copy)]
pub struct BatchConfig {
    /// Maximum queries coalesced into one engine pass. Whole requests
    /// are never split, so one oversized request still executes alone.
    pub max_queries: usize,
    /// How long an executor waits for more queries to arrive after the
    /// first one. Microsecond-scale: bounds added latency while letting
    /// genuinely concurrent arrivals coalesce.
    pub linger: Duration,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            max_queries: 256,
            linger: Duration::from_micros(100),
        }
    }
}

/// How the server turns admitted requests into engine passes.
#[derive(Debug, Clone, Copy)]
pub enum ExecutionMode {
    /// One freshly spawned engine pass per request (the naive
    /// thread-per-request baseline the batched mode is measured
    /// against).
    PerRequest,
    /// Admission queue + persistent executors coalescing concurrent
    /// requests into shared engine passes.
    Batched(BatchConfig),
}

/// Server configuration.
#[derive(Debug, Clone, Copy)]
pub struct ServeOptions {
    /// Execution mode (default: batched with [`BatchConfig::default`]).
    pub mode: ExecutionMode,
    /// Executor threads draining the admission queue in batched mode
    /// (ignored in per-request mode). Usually 1: each pass is already
    /// internally parallel via the engine's work-stealing `par_map`.
    pub executors: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            mode: ExecutionMode::Batched(BatchConfig::default()),
            executors: 1,
        }
    }
}

impl ServeOptions {
    /// Batched admission with default tuning.
    #[must_use]
    pub fn batched() -> Self {
        ServeOptions::default()
    }

    /// The naive per-request baseline.
    #[must_use]
    pub fn per_request() -> Self {
        ServeOptions {
            mode: ExecutionMode::PerRequest,
            ..ServeOptions::default()
        }
    }
}

/// A point-in-time snapshot of the server's counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServerStats {
    /// Requests answered (any mode).
    pub requests: u64,
    /// Queries executed (any mode).
    pub queries: u64,
    /// Engine passes run by batched executors.
    pub batches: u64,
    /// Queries that went through batched passes.
    pub batched_queries: u64,
    /// Ingest frames answered with an ack (live servers only).
    pub ingests: u64,
    /// Trajectories accepted across all acked ingest frames.
    pub ingested_trajs: u64,
}

impl ServerStats {
    /// Mean queries per batched engine pass (0 when none ran).
    #[must_use]
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batched_queries as f64 / self.batches as f64
        }
    }
}

/// One admitted request waiting for an engine pass: its queries and
/// the channel that routes results back to the connection handler.
struct Job {
    queries: Vec<Query>,
    reply: SyncSender<Vec<QueryResult>>,
}

#[derive(Default)]
struct QueueState {
    jobs: VecDeque<Job>,
    queued_queries: usize,
}

struct Shared {
    db: ServeDb,
    mode: ExecutionMode,
    queue: Mutex<QueueState>,
    available: Condvar,
    shutting_down: AtomicBool,
    requests: AtomicU64,
    queries: AtomicU64,
    batches: AtomicU64,
    batched_queries: AtomicU64,
    ingests: AtomicU64,
    ingested_trajs: AtomicU64,
    conns: Mutex<Vec<TcpStream>>,
    handlers: Mutex<Vec<JoinHandle<()>>>,
}

/// A running wire-format query server. Dropping it shuts it down.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    executors: Vec<JoinHandle<()>>,
    done: bool,
}

impl Server {
    /// Opens the store at `path` (CSV / snapshot / quantized snapshot /
    /// shard directory, auto-detected by [`TrajDb::open`]) and serves
    /// it on `addr`.
    pub fn open(
        path: impl AsRef<Path>,
        db_opts: DbOptions,
        addr: impl ToSocketAddrs,
        opts: ServeOptions,
    ) -> Result<Server, TrajDbError> {
        let db = TrajDb::open(path, db_opts)?;
        Server::start(db, addr, opts).map_err(TrajDbError::Io)
    }

    /// Starts serving an already-open database on `addr`. Accepts an
    /// immutable [`TrajDb`] or a live [`GenerationalDb`] (see
    /// [`ServeDb`]). Bind to port 0 to let the OS pick;
    /// [`Server::local_addr`] reports the result.
    pub fn start(
        db: impl Into<ServeDb>,
        addr: impl ToSocketAddrs,
        opts: ServeOptions,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shared = Arc::new(Shared {
            db: db.into(),
            mode: opts.mode,
            queue: Mutex::new(QueueState::default()),
            available: Condvar::new(),
            shutting_down: AtomicBool::new(false),
            requests: AtomicU64::new(0),
            queries: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batched_queries: AtomicU64::new(0),
            ingests: AtomicU64::new(0),
            ingested_trajs: AtomicU64::new(0),
            conns: Mutex::new(Vec::new()),
            handlers: Mutex::new(Vec::new()),
        });

        let mut executors = Vec::new();
        if let ExecutionMode::Batched(cfg) = opts.mode {
            for _ in 0..opts.executors.max(1) {
                let shared = Arc::clone(&shared);
                executors.push(std::thread::spawn(move || executor_loop(&shared, cfg)));
            }
        }

        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::spawn(move || accept_loop(&listener, &accept_shared));

        Ok(Server {
            shared,
            addr: local,
            accept: Some(accept),
            executors,
            done: false,
        })
    }

    /// The address the server is listening on.
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current counters.
    #[must_use]
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            requests: self.shared.requests.load(Ordering::Relaxed),
            queries: self.shared.queries.load(Ordering::Relaxed),
            batches: self.shared.batches.load(Ordering::Relaxed),
            batched_queries: self.shared.batched_queries.load(Ordering::Relaxed),
            ingests: self.shared.ingests.load(Ordering::Relaxed),
            ingested_trajs: self.shared.ingested_trajs.load(Ordering::Relaxed),
        }
    }

    /// Stops accepting, closes every connection, drains the executors,
    /// and joins all threads. Idempotent; also runs on drop.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        if self.done {
            return;
        }
        self.done = true;
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        // Wake executors blocked on the admission queue.
        self.shared.available.notify_all();
        // Unblock handler threads blocked in read_message.
        for conn in self.shared.conns.lock().expect("conns lock").iter() {
            let _ = conn.shutdown(Shutdown::Both);
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let handlers = std::mem::take(&mut *self.shared.handlers.lock().expect("handlers lock"));
        for h in handlers {
            let _ = h.join();
        }
        for h in self.executors.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.shutting_down.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.shutting_down.load(Ordering::SeqCst) {
            return;
        }
        let _ = stream.set_nodelay(true);
        if let Ok(clone) = stream.try_clone() {
            shared.conns.lock().expect("conns lock").push(clone);
        }
        let handler_shared = Arc::clone(shared);
        let handle = std::thread::spawn(move || handle_connection(stream, &handler_shared));
        shared.handlers.lock().expect("handlers lock").push(handle);
    }
}

fn handle_connection(mut stream: TcpStream, shared: &Arc<Shared>) {
    serve_connection(&mut stream, shared);
    // The conns registry holds a duplicate fd for this socket, so merely
    // dropping our handle would not send FIN; shut the socket itself
    // down so the peer sees end-of-stream.
    let _ = stream.shutdown(Shutdown::Both);
}

fn serve_connection(stream: &mut TcpStream, shared: &Arc<Shared>) {
    loop {
        if shared.shutting_down.load(Ordering::SeqCst) {
            return;
        }
        let reply = match read_message(stream) {
            Ok(Some(Message::Request(batch))) => {
                let results = execute(shared, batch);
                Message::Response(results)
            }
            // Distributed-serving frames bypass the admission queue:
            // the coordinator already batches per shard, and shard
            // results (scored kNN candidates, raw local hits) are not
            // expressible as the `Job` results the executors route.
            Ok(Some(Message::Hello)) => {
                // Bounds come from the decoded store, so for quantized
                // snapshots they match the manifest's `bounds=` lines
                // bitwise (both are computed post-decode).
                let db = shared.db.executor();
                let bounds = (db.total_points() > 0).then(|| shared.db.bounding_cube());
                Message::ShardInfo(ShardInfo {
                    trajs: db.len() as u64,
                    points: db.total_points() as u64,
                    has_kept: db.has_kept_bitmap(),
                    bounds,
                })
            }
            Ok(Some(Message::ShardRequest { id, batch })) => {
                shared
                    .queries
                    .fetch_add(batch.len() as u64, Ordering::Relaxed);
                Message::ShardResponse {
                    id,
                    results: serve_shard_batch(&shared.db, &batch),
                }
            }
            // Writes bypass the admission queue: the delta store already
            // coalesces a whole frame into one WAL sync, and an ack must
            // not wait behind a read linger window.
            Ok(Some(Message::Ingest(trajs))) => match shared.db.ingest(&trajs) {
                None => Message::Error {
                    code: ERR_READ_ONLY,
                    message: "server fronts an immutable snapshot; ingest needs a live database"
                        .to_owned(),
                },
                Some(Ok(report)) => {
                    shared.ingests.fetch_add(1, Ordering::Relaxed);
                    shared
                        .ingested_trajs
                        .fetch_add(u64::from(report.accepted), Ordering::Relaxed);
                    Message::IngestAck(IngestAck {
                        accepted: report.accepted,
                        rejected: report.rejected,
                        first_id: report.first_id,
                        total_trajs: report.total_trajs,
                        total_points: report.total_points,
                    })
                }
                Some(Err(e)) => Message::Error {
                    code: ERR_INGEST_FAILED,
                    message: e.to_string(),
                },
            },
            Ok(Some(_)) => {
                // A server only accepts request-side frames; anything
                // else ends the conversation after a typed error frame.
                let _ = write_message(
                    stream,
                    &Message::Error {
                        code: ERR_NOT_A_REQUEST,
                        message: "expected a request frame".to_owned(),
                    },
                );
                return;
            }
            Ok(None) | Err(WireError::Io(_)) => return,
            Err(e) => {
                // Corrupt frame. The stream may be desynchronized, so
                // answer with a typed error and close.
                let _ = write_message(
                    stream,
                    &Message::Error {
                        code: ERR_BAD_REQUEST,
                        message: e.to_string(),
                    },
                );
                return;
            }
        };
        shared.requests.fetch_add(1, Ordering::Relaxed);
        if write_message(stream, &reply).is_err() {
            return;
        }
        let _ = stream.flush();
    }
}

/// Executes a batch as one *shard* of a distributed database: raw
/// shard-local results — no global-id remap, no kNN infinite-fill —
/// exactly the per-shard material `ShardedQueryEngine` produces before
/// its in-process merge. The coordinator applies the placement map's
/// remap and the global merge; the equivalence suite pins the two paths
/// byte-identical.
#[must_use]
pub fn execute_shard_batch(db: &TrajDb, batch: &QueryBatch) -> Vec<ShardResult> {
    batch
        .queries()
        .iter()
        .map(|q| match q {
            Query::Range(c) => ShardResult::Ids(db.range(c)),
            Query::Knn(k) => ShardResult::Candidates(db.knn_candidates(k)),
            Query::Similarity(s) => ShardResult::Ids(db.similarity(s)),
            Query::RangeKept(c) => ShardResult::Kept(db.range_kept(c)),
        })
        .collect()
}

/// [`execute_shard_batch`] over either serving layout. A live database
/// produces the same per-shard material — its merged `knn_candidates`
/// already have the canonical candidate shape (finite, `(d, id)`
/// ascending, truncated to `k`, `-0.0`-normalized).
fn serve_shard_batch(db: &ServeDb, batch: &QueryBatch) -> Vec<ShardResult> {
    match db {
        ServeDb::Static(db) => execute_shard_batch(db, batch),
        ServeDb::Live(db) => batch
            .queries()
            .iter()
            .map(|q| match q {
                Query::Range(c) => ShardResult::Ids(db.range(c)),
                Query::Knn(k) => ShardResult::Candidates(db.knn_candidates(k)),
                Query::Similarity(s) => ShardResult::Ids(db.similarity(s)),
                Query::RangeKept(c) => ShardResult::Kept(db.range_kept(c)),
            })
            .collect(),
    }
}

fn execute(shared: &Arc<Shared>, batch: QueryBatch) -> Vec<QueryResult> {
    shared
        .queries
        .fetch_add(batch.len() as u64, Ordering::Relaxed);
    match shared.mode {
        ExecutionMode::PerRequest => {
            // The naive baseline: a dedicated engine pass on its own
            // freshly spawned thread, per request.
            let db = Arc::clone(shared);
            std::thread::spawn(move || db.db.executor().execute_batch(&batch))
                .join()
                .expect("per-request engine pass panicked")
        }
        ExecutionMode::Batched(_) => {
            let (tx, rx) = sync_channel(1);
            let n = batch.len();
            {
                let mut q = shared.queue.lock().expect("queue lock");
                q.queued_queries += n;
                q.jobs.push_back(Job {
                    queries: batch.into_queries(),
                    reply: tx,
                });
            }
            shared.available.notify_one();
            rx.recv().expect("executor dropped reply channel")
        }
    }
}

/// The admission drain: waits for work, lingers briefly to let
/// concurrent arrivals coalesce, then runs everything it took in one
/// heterogeneous engine pass and routes the slices back.
fn executor_loop(shared: &Arc<Shared>, cfg: BatchConfig) {
    let max_queries = cfg.max_queries.max(1);
    loop {
        let jobs = {
            let mut q = shared.queue.lock().expect("queue lock");
            // Wait for the first job (or shutdown).
            while q.jobs.is_empty() {
                if shared.shutting_down.load(Ordering::SeqCst) {
                    return;
                }
                q = shared.available.wait(q).expect("queue lock");
            }
            // Linger: give concurrently arriving requests a short,
            // bounded window to join this pass.
            if !cfg.linger.is_zero() {
                let deadline = Instant::now() + cfg.linger;
                while q.queued_queries < max_queries {
                    let now = Instant::now();
                    if now >= deadline || shared.shutting_down.load(Ordering::SeqCst) {
                        break;
                    }
                    let (guard, _timeout) = shared
                        .available
                        .wait_timeout(q, deadline - now)
                        .expect("queue lock");
                    q = guard;
                }
            }
            // Take whole jobs up to the batch bound (always at least
            // one, so an oversized request still executes — alone).
            let mut jobs: Vec<Job> = Vec::new();
            let mut taken = 0usize;
            while let Some(job) = q.jobs.front() {
                if !jobs.is_empty() && taken + job.queries.len() > max_queries {
                    break;
                }
                taken += job.queries.len();
                let job = q.jobs.pop_front().expect("front checked");
                jobs.push(job);
            }
            q.queued_queries -= taken;
            jobs
        };
        if jobs.is_empty() {
            continue;
        }

        // One heterogeneous pass over everything admitted.
        let lens: Vec<usize> = jobs.iter().map(|j| j.queries.len()).collect();
        let mut combined: Vec<Query> = Vec::with_capacity(lens.iter().sum());
        let mut replies = Vec::with_capacity(jobs.len());
        for job in jobs {
            combined.extend(job.queries);
            replies.push(job.reply);
        }
        let batch = QueryBatch::from_queries(combined);
        let mut results = shared.db.executor().execute_batch(&batch).into_iter();
        shared.batches.fetch_add(1, Ordering::Relaxed);
        shared
            .batched_queries
            .fetch_add(batch.len() as u64, Ordering::Relaxed);

        // Route each job's slice of the results back, in order.
        for (len, reply) in lens.into_iter().zip(replies) {
            let slice: Vec<QueryResult> = results.by_ref().take(len).collect();
            // A receiver that gave up (connection died) is fine.
            let _ = reply.send(slice);
        }
    }
}
