//! A byte-level fault-injection TCP proxy for testing the serving
//! stack's failure handling.
//!
//! [`FaultProxy`] sits between a client and an upstream server,
//! forwarding bytes in both directions while applying one configured
//! [`Fault`] to one direction of the stream: close the connection
//! mid-frame, silently black-hole everything past an offset (the peer
//! stalls until its deadline fires), delay delivery, or flip a single
//! bit in flight. The harness in `tests/fault_props.rs` drives every
//! frame kind through every fault class and asserts the invariant the
//! wire format promises: a faulted exchange yields either the correct
//! answer or a *typed* error — never a silently wrong answer.
//!
//! Each accepted connection snapshots the fault configured at accept
//! time, so tests reconfigure with [`FaultProxy::set_fault`] and then
//! open a fresh connection.

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Which direction of the proxied stream a [`Fault`] applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultDirection {
    /// Bytes flowing from the client toward the upstream server
    /// (requests).
    ClientToServer,
    /// Bytes flowing from the upstream server back to the client
    /// (responses).
    ServerToClient,
}

/// A single injected failure, anchored at a byte offset within one
/// direction of the proxied stream (offset 0 = the first byte that
/// direction carries on the connection).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Forward everything faithfully.
    None,
    /// Forward the first `offset` bytes, then close both sides of the
    /// connection — a peer crash mid-frame.
    CloseAt {
        /// Direction the cut applies to.
        dir: FaultDirection,
        /// Bytes delivered before the cut.
        offset: u64,
    },
    /// Forward the first `offset` bytes, then silently discard the
    /// rest while keeping the connection open — a stall that only a
    /// deadline can unstick.
    DropFrom {
        /// Direction the black hole applies to.
        dir: FaultDirection,
        /// Bytes delivered before the stall.
        offset: u64,
    },
    /// Pause delivery once, just before the byte at `offset` is
    /// forwarded, then continue faithfully — transient congestion.
    DelayAt {
        /// Direction the pause applies to.
        dir: FaultDirection,
        /// Byte offset that triggers the pause.
        offset: u64,
        /// How long to pause.
        delay: Duration,
    },
    /// Flip one bit of the byte at `offset` and forward everything —
    /// in-flight corruption the frame checksum must catch.
    FlipBit {
        /// Direction the corruption applies to.
        dir: FaultDirection,
        /// Byte offset of the corrupted byte.
        offset: u64,
        /// Bit index (0–7) to flip within that byte.
        bit: u8,
    },
}

/// The per-direction residue of a [`Fault`]: what one pump thread
/// actually applies to its stream.
#[derive(Debug, Clone, Copy)]
enum LocalFault {
    None,
    CloseAt(u64),
    DropFrom(u64),
    DelayAt(u64, Duration),
    FlipBit(u64, u8),
}

fn localize(fault: Fault, dir: FaultDirection) -> LocalFault {
    match fault {
        Fault::None => LocalFault::None,
        Fault::CloseAt { dir: d, offset } if d == dir => LocalFault::CloseAt(offset),
        Fault::DropFrom { dir: d, offset } if d == dir => LocalFault::DropFrom(offset),
        Fault::DelayAt {
            dir: d,
            offset,
            delay,
        } if d == dir => LocalFault::DelayAt(offset, delay),
        Fault::FlipBit {
            dir: d,
            offset,
            bit,
        } if d == dir => LocalFault::FlipBit(offset, bit),
        _ => LocalFault::None,
    }
}

/// The fault-injecting TCP proxy. Listens on an ephemeral loopback
/// port; point clients at [`FaultProxy::local_addr`] instead of the
/// real server.
pub struct FaultProxy {
    addr: SocketAddr,
    fault: Arc<Mutex<Fault>>,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl FaultProxy {
    /// Starts a proxy in front of `upstream` with no fault configured.
    pub fn start(upstream: SocketAddr) -> io::Result<FaultProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let fault = Arc::new(Mutex::new(Fault::None));
        let stop = Arc::new(AtomicBool::new(false));
        let fault2 = Arc::clone(&fault);
        let stop2 = Arc::clone(&stop);
        let accept = thread::spawn(move || {
            for conn in listener.incoming() {
                if stop2.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(client) = conn else { continue };
                let Ok(server) = TcpStream::connect(upstream) else {
                    let _ = client.shutdown(Shutdown::Both);
                    continue;
                };
                let _ = client.set_nodelay(true);
                let _ = server.set_nodelay(true);
                let snapshot = *fault2.lock().expect("fault lock poisoned");
                let (Ok(client_rd), Ok(server_rd)) = (client.try_clone(), server.try_clone())
                else {
                    continue;
                };
                let c2s = localize(snapshot, FaultDirection::ClientToServer);
                let s2c = localize(snapshot, FaultDirection::ServerToClient);
                // Pump threads exit when either side closes; they are
                // detached because their lifetime is bounded by the
                // sockets, not the proxy handle.
                thread::spawn(move || pump(client_rd, server, c2s));
                thread::spawn(move || pump(server_rd, client, s2c));
            }
        });
        Ok(FaultProxy {
            addr,
            fault,
            stop,
            accept: Some(accept),
        })
    }

    /// The address clients should connect to.
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Sets the fault applied to connections accepted *from now on*;
    /// already-open connections keep their snapshot.
    pub fn set_fault(&self, fault: Fault) {
        *self.fault.lock().expect("fault lock poisoned") = fault;
    }
}

impl Drop for FaultProxy {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop so it observes the stop flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

/// Copies bytes `from` → `to`, applying one [`LocalFault`] keyed on the
/// cumulative byte offset of this direction.
fn pump(mut from: TcpStream, mut to: TcpStream, fault: LocalFault) {
    let mut seen = 0u64;
    let mut delayed = false;
    let mut dropping = false;
    let mut buf = [0u8; 4096];
    loop {
        let n = match from.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        let start = seen;
        seen += n as u64;
        if dropping {
            // Keep draining so the sender never blocks; deliver nothing.
            continue;
        }
        let chunk = &mut buf[..n];
        let delivered = match fault {
            LocalFault::None => to.write_all(chunk).is_ok(),
            LocalFault::FlipBit(offset, bit) => {
                if offset >= start && offset < seen {
                    chunk[(offset - start) as usize] ^= 1 << (bit & 7);
                }
                to.write_all(chunk).is_ok()
            }
            LocalFault::DelayAt(offset, delay) => {
                if !delayed && offset < seen {
                    delayed = true;
                    thread::sleep(delay);
                }
                to.write_all(chunk).is_ok()
            }
            LocalFault::CloseAt(offset) => {
                if offset < seen {
                    let keep = (offset - start) as usize;
                    let _ = to.write_all(&chunk[..keep]);
                    let _ = to.shutdown(Shutdown::Both);
                    let _ = from.shutdown(Shutdown::Both);
                    return;
                }
                to.write_all(chunk).is_ok()
            }
            LocalFault::DropFrom(offset) => {
                if offset < seen {
                    let keep = (offset.saturating_sub(start)) as usize;
                    let ok = to.write_all(&chunk[..keep]).is_ok();
                    dropping = true;
                    ok
                } else {
                    to.write_all(chunk).is_ok()
                }
            }
        };
        if !delivered {
            break;
        }
    }
    let _ = to.shutdown(Shutdown::Write);
    let _ = from.shutdown(Shutdown::Read);
}
