//! Wire-format query serving for the RL4QDTS reproduction: the network
//! boundary the typed `Query`/`QueryResult`/`QueryBatch` plans were
//! designed for.
//!
//! Three layers:
//!
//! - [`wire`] — a versioned, length-prefixed, checksummed little-endian
//!   frame format carrying whole batch plans and their results, with a
//!   typed [`WireError`] for every corruption class (mirroring the
//!   snapshot codec's discipline, and reusing its encode primitives);
//! - [`server`] — a multi-threaded TCP server sharing one immutable
//!   [`TrajDb`](traj_query::TrajDb) across all connections, whose
//!   **admission/batching layer** coalesces queries arriving
//!   concurrently on many connections into single heterogeneous
//!   work-stealing engine passes (vs. the naive one-engine-pass-per-
//!   request mode it is benchmarked against);
//! - [`client`] — a blocking client speaking the same frames (with
//!   optional connect/read/write deadlines), plus the
//!   `traj_bench_client` load generator that measures throughput and
//!   p50/p95/p99 latency for both execution modes;
//! - [`coordinator`] — the distributed layer: a fleet of `shardd`
//!   processes each serving one shard's snapshot, a [`Placement`] map
//!   read from the shard manifest's `addr=`/`bounds=` assignments, and
//!   a [`Coordinator`] that routes each batch to only the shards whose
//!   bounds can contribute (a fully-pruned shard gets no frame at
//!   all), fans the sub-batches out in parallel over pooled id-tagged
//!   connections, and merges per-shard answers byte-identically to the
//!   in-process sharded engine — with timeouts, bounded retries, and a
//!   per-request [`FailurePolicy`] for typed degraded answers. A
//!   [`SharedCoordinator`] puts the server's admission/linger layer in
//!   front so concurrent submissions coalesce into one wire round per
//!   shard;
//! - [`fault`] — a byte-level fault-injecting TCP proxy ([`FaultProxy`])
//!   used by the test suites to prove every injected failure surfaces
//!   as a typed error or a correct degraded answer, never a wrong one.
//!
//! ```no_run
//! use traj_query::{DbOptions, QueryBatch, TrajDb};
//! use traj_serve::{Client, ServeOptions, Server};
//! use trajectory::Cube;
//!
//! let db = TrajDb::open("points.csv", DbOptions::new())?;
//! let server = Server::start(db, "127.0.0.1:0", ServeOptions::batched())?;
//! let mut client = Client::connect(server.local_addr())?;
//! let mut batch = QueryBatch::new();
//! batch.push_range(Cube::new(0.0, 1000.0, 0.0, 1000.0, 0.0, 3600.0));
//! let results = client.execute_batch(&batch)?;
//! # let _ = results;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod coordinator;
pub mod fault;
pub mod server;
pub mod wire;

pub use client::{Client, ClientConfig};
pub use coordinator::{
    Coordinator, CoordinatorError, CoordinatorOptions, CoordinatorStats, DistributedResponse,
    FailurePolicy, Placement, PlacementShard, ResponseStatus, ShardFrameStats, SharedCoordinator,
};
pub use fault::{Fault, FaultDirection, FaultProxy};
pub use server::{
    execute_shard_batch, BatchConfig, ExecutionMode, ServeDb, ServeOptions, Server, ServerStats,
    ERR_INGEST_FAILED, ERR_READ_ONLY,
};
pub use wire::{
    decode_message, encode_message, read_message, write_message, IngestAck, Message, ShardInfo,
    ShardResult, WireError, MAGIC, MAX_PAYLOAD, SHARD_INFO_VERSION, VERSION,
};

/// The byte-level wire format specification (`docs/WIRE_FORMAT.md`),
/// included here so its examples compile and run as doc-tests.
#[doc = include_str!("../../../docs/WIRE_FORMAT.md")]
pub mod format_spec {}
