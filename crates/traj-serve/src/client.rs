//! Blocking client for the wire protocol: one TCP connection, framed
//! request/response pairs.

use std::net::{TcpStream, ToSocketAddrs};

use traj_query::{Query, QueryBatch, QueryResult};

use crate::wire::{read_message, write_message, Message, WireError};

/// A connected client. One in-flight request at a time (the protocol
/// is strict request/response per connection); open more clients for
/// concurrency.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a [`Server`](crate::Server). Enables `TCP_NODELAY`
    /// so microsecond-scale frames are not held back by Nagle.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// Executes a whole batch plan remotely, returning results in
    /// submission order — the wire twin of
    /// [`QueryExecutor::execute_batch`](traj_query::QueryExecutor::execute_batch).
    pub fn execute_batch(&mut self, batch: &QueryBatch) -> Result<Vec<QueryResult>, WireError> {
        write_message(&mut self.stream, &Message::Request(batch.clone()))?;
        match read_message(&mut self.stream)? {
            Some(Message::Response(results)) => {
                if results.len() != batch.len() {
                    return Err(WireError::Malformed {
                        reason: "response count does not match request",
                    });
                }
                Ok(results)
            }
            Some(Message::Error { code, message }) => Err(WireError::Remote { code, message }),
            Some(Message::Request(_)) => Err(WireError::Malformed {
                reason: "peer sent a request frame to a client",
            }),
            None => Err(WireError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection before answering",
            ))),
        }
    }

    /// Executes one query remotely.
    pub fn execute(&mut self, query: &Query) -> Result<QueryResult, WireError> {
        let batch = QueryBatch::from_queries(vec![query.clone()]);
        let mut results = self.execute_batch(&batch)?;
        results.pop().ok_or(WireError::Malformed {
            reason: "empty response to a single-query request",
        })
    }
}
