//! Blocking client for the wire protocol: one TCP connection, framed
//! request/response pairs, with optional connect/read/write deadlines
//! so a dead or stalled peer surfaces as a typed
//! [`WireError::Timeout`] instead of blocking forever.

use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use traj_query::{Query, QueryBatch, QueryResult};
use trajectory::Trajectory;

use crate::wire::{
    read_message, write_message, IngestAck, Message, ShardInfo, ShardResult, WireError,
};

/// Socket deadlines for a [`Client`]. `None` everywhere (the default)
/// blocks indefinitely — fine for tests and trusted loopback peers;
/// a distributed coordinator always sets all three.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClientConfig {
    /// Deadline for establishing the TCP connection.
    pub connect_timeout: Option<Duration>,
    /// Deadline for each socket read while waiting for a response.
    pub read_timeout: Option<Duration>,
    /// Deadline for each socket write while sending a request.
    pub write_timeout: Option<Duration>,
}

/// A connected client. Plain request frames are strict
/// request/response — one in flight at a time; open more clients for
/// concurrency. *Shard* frames carry a request id
/// ([`Client::execute_shard_batch`]), which a coordinator's connection
/// pool uses to keep several rounds in flight across its pooled
/// connections and still pair every reply with its request.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

/// `SO_RCVTIMEO`/`SO_SNDTIMEO` expiry surfaces as `WouldBlock` or
/// `TimedOut` depending on the platform; both mean "deadline expired".
fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

fn map_io(during: &'static str, e: io::Error) -> WireError {
    if is_timeout(&e) {
        WireError::Timeout { during }
    } else {
        WireError::Io(e)
    }
}

fn map_timeout<T>(during: &'static str, r: Result<T, WireError>) -> Result<T, WireError> {
    r.map_err(|e| match e {
        WireError::Io(io) if is_timeout(&io) => WireError::Timeout { during },
        other => other,
    })
}

impl Client {
    /// Connects to a [`Server`](crate::Server) with no deadlines.
    /// Enables `TCP_NODELAY` so microsecond-scale frames are not held
    /// back by Nagle.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// [`Client::connect`] with deadlines: the connect attempt itself is
    /// bounded by `config.connect_timeout`, and every subsequent
    /// request honors the read/write deadlines — an unresponsive peer
    /// yields [`WireError::Timeout`] instead of hanging the caller.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        config: &ClientConfig,
    ) -> Result<Client, WireError> {
        let stream = match config.connect_timeout {
            None => TcpStream::connect(addr).map_err(|e| map_io("connect", e))?,
            Some(limit) => {
                // `TcpStream::connect_timeout` takes a single resolved
                // address; try each resolution like `connect` would.
                let addrs = addr.to_socket_addrs()?;
                let mut last: Option<io::Error> = None;
                let mut connected = None;
                for a in addrs {
                    match TcpStream::connect_timeout(&a, limit) {
                        Ok(s) => {
                            connected = Some(s);
                            break;
                        }
                        Err(e) => last = Some(e),
                    }
                }
                match connected {
                    Some(s) => s,
                    None => {
                        let e = last.unwrap_or_else(|| {
                            io::Error::new(
                                io::ErrorKind::InvalidInput,
                                "address resolved to no socket addresses",
                            )
                        });
                        return Err(map_io("connect", e));
                    }
                }
            }
        };
        stream.set_nodelay(true)?;
        stream.set_read_timeout(config.read_timeout)?;
        stream.set_write_timeout(config.write_timeout)?;
        Ok(Client { stream })
    }

    /// Executes a whole batch plan remotely, returning results in
    /// submission order — the wire twin of
    /// [`QueryExecutor::execute_batch`](traj_query::QueryExecutor::execute_batch).
    pub fn execute_batch(&mut self, batch: &QueryBatch) -> Result<Vec<QueryResult>, WireError> {
        self.send(&Message::Request(batch.clone()))?;
        match self.receive()? {
            Message::Response(results) => {
                if results.len() != batch.len() {
                    return Err(WireError::Malformed {
                        reason: "response count does not match request",
                    });
                }
                Ok(results)
            }
            Message::Error { code, message } => Err(WireError::Remote { code, message }),
            _ => Err(WireError::Malformed {
                reason: "peer answered a request with the wrong frame kind",
            }),
        }
    }

    /// Executes one query remotely.
    pub fn execute(&mut self, query: &Query) -> Result<QueryResult, WireError> {
        let batch = QueryBatch::from_queries(vec![query.clone()]);
        let mut results = self.execute_batch(&batch)?;
        results.pop().ok_or(WireError::Malformed {
            reason: "empty response to a single-query request",
        })
    }

    /// The coordinator handshake: asks the shard server to identify
    /// itself (trajectory/point counts, kept-bitmap presence) so the
    /// placement map can be cross-checked before queries flow.
    pub fn hello(&mut self) -> Result<ShardInfo, WireError> {
        self.send(&Message::Hello)?;
        match self.receive()? {
            Message::ShardInfo(info) => Ok(info),
            Message::Error { code, message } => Err(WireError::Remote { code, message }),
            _ => Err(WireError::Malformed {
                reason: "peer answered hello with the wrong frame kind",
            }),
        }
    }

    /// Executes a batch as one *shard* of a distributed database: the
    /// server returns raw per-shard material ([`ShardResult`] per
    /// query — local hits, kept hits, scored kNN candidates) for the
    /// coordinator to merge globally. The caller-chosen `id` is sent on
    /// the request and verified against the response's echo — a
    /// mismatched echo means the connection lost request/response
    /// pairing and is reported as [`WireError::Malformed`] (callers
    /// drop the connection and retry on a fresh one).
    pub fn execute_shard_batch(
        &mut self,
        batch: &QueryBatch,
        id: u64,
    ) -> Result<Vec<ShardResult>, WireError> {
        self.send(&Message::ShardRequest {
            id,
            batch: batch.clone(),
        })?;
        match self.receive()? {
            Message::ShardResponse {
                id: echoed,
                results,
            } => {
                if echoed != id {
                    return Err(WireError::Malformed {
                        reason: "shard response echoes a different request id",
                    });
                }
                if results.len() != batch.len() {
                    return Err(WireError::Malformed {
                        reason: "shard response count does not match request",
                    });
                }
                Ok(results)
            }
            Message::Error { code, message } => Err(WireError::Remote { code, message }),
            _ => Err(WireError::Malformed {
                reason: "peer answered a shard request with the wrong frame kind",
            }),
        }
    }

    /// Appends trajectories to a live server. The returned
    /// [`IngestAck`] means the batch is WAL-durable *and* already
    /// visible to queries — an immediately following range query on the
    /// same server sees the new ids. A server fronting an immutable
    /// snapshot answers with a typed [`WireError::Remote`] carrying
    /// [`ERR_READ_ONLY`](crate::server::ERR_READ_ONLY).
    pub fn ingest(&mut self, trajs: &[Trajectory]) -> Result<IngestAck, WireError> {
        self.send(&Message::Ingest(trajs.to_vec()))?;
        match self.receive()? {
            Message::IngestAck(ack) => Ok(ack),
            Message::Error { code, message } => Err(WireError::Remote { code, message }),
            _ => Err(WireError::Malformed {
                reason: "peer answered an ingest with the wrong frame kind",
            }),
        }
    }

    fn send(&mut self, msg: &Message) -> Result<(), WireError> {
        map_timeout("write", write_message(&mut self.stream, msg))
    }

    fn receive(&mut self) -> Result<Message, WireError> {
        match map_timeout("read", read_message(&mut self.stream))? {
            Some(msg) => Ok(msg),
            None => Err(WireError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection before answering",
            ))),
        }
    }
}
