//! The distributed query coordinator: fans a [`QueryBatch`] out to
//! shard *processes* over the wire and merges their raw per-shard
//! answers exactly as `ShardedQueryEngine` merges in-process shards.
//!
//! The shard manifest doubles as the placement map: each
//! [`ShardEntry`](trajectory::shard::ShardEntry) carries an optional
//! `addr=` token naming the `shardd` process serving that shard's
//! snapshot. [`Placement::from_manifest`] reads it,
//! [`Coordinator::connect`] dials every shard (with a bounded connect
//! timeout) and cross-checks each one's
//! [`ShardInfo`](crate::wire::ShardInfo) handshake against
//! the placement map, and [`Coordinator::execute_batch`] runs the
//! fan-out:
//!
//! - every shard receives the *whole* batch as a
//!   [`Message::ShardRequest`](crate::wire::Message) in parallel
//!   (pruning stays result-neutral in-process, so skipping it here
//!   cannot change answers);
//! - range/similarity hits come back shard-local, are remapped through
//!   the placement map's `global_ids`, and merge by concatenation +
//!   sort ([`merge_global_ids`]);
//! - kNN candidates come back scored; after the same remap they feed
//!   the global k-heap ([`merge_knn_candidates`]) and the single-store
//!   infinite-fill policy ([`knn_take_fill`]) — byte-identical to the
//!   in-process merge;
//! - kept-bitmap range results are `Some` only when every answering
//!   shard served its bitmap, mirroring
//!   `ShardedQueryEngine::has_kept_bitmaps`.
//!
//! Failures are first-class: per-shard connect/request timeouts,
//! bounded retries with linear backoff and reconnection, and a
//! per-request [`FailurePolicy`] — [`FailurePolicy::FailFast`] turns
//! any shard failure into a typed [`CoordinatorError::ShardFailed`],
//! while [`FailurePolicy::Degrade`] answers from the surviving shards
//! and reports [`ResponseStatus::Degraded`] with the missing shard
//! indexes (a *correct* answer over the reachable subset — the kNN
//! infinite-fill universe shrinks to the survivors' ids — never a
//! silently wrong one). Connections are reused across batches and
//! re-dialed transparently after a failure.

use std::fmt;
use std::time::Duration;

use traj_query::{
    knn_take_fill, merge_global_ids, merge_knn_candidates, Query, QueryBatch, QueryResult,
};
use trajectory::shard::ShardSet;
use trajectory::TrajId;

use crate::client::{Client, ClientConfig};
use crate::wire::{ShardResult, WireError};

/// Where one shard of a distributed database lives: the address of the
/// process serving it and the global trajectory ids it holds (strictly
/// ascending — shard-local order is global order).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlacementShard {
    /// `host:port` of the serving process.
    pub addr: String,
    /// `global_ids[local]` = global trajectory id.
    pub global_ids: Vec<TrajId>,
}

/// The placement map: one [`PlacementShard`] per shard, together
/// covering global ids `0..total_trajs` exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    shards: Vec<PlacementShard>,
    total_trajs: usize,
}

impl Placement {
    /// Reads a [`ShardSet`] manifest as a placement map. Every entry
    /// must carry an `addr=` assignment (see `ShardSet::set_addrs`);
    /// id-level validity (sorted, disjoint, covering) was already
    /// enforced by `ShardSet::load`.
    pub fn from_manifest(set: &ShardSet) -> Result<Placement, CoordinatorError> {
        let mut shards = Vec::with_capacity(set.len());
        for e in set.entries() {
            let addr = e
                .addr
                .clone()
                .ok_or_else(|| CoordinatorError::MissingAddr {
                    file: e.file.clone(),
                })?;
            shards.push(PlacementShard {
                addr,
                global_ids: e.global_ids.clone(),
            });
        }
        Ok(Placement {
            shards,
            total_trajs: set.total_trajs(),
        })
    }

    /// Builds a placement from explicit `(addr, global_ids)` parts,
    /// validating what `ShardSet::load` would: ids strictly ascending
    /// per shard, disjoint across shards, covering `0..total` exactly,
    /// and pairwise-distinct addresses.
    pub fn from_parts(parts: Vec<(String, Vec<TrajId>)>) -> Result<Placement, CoordinatorError> {
        let total: usize = parts.iter().map(|(_, ids)| ids.len()).sum();
        let mut seen = vec![false; total];
        for (i, (addr, ids)) in parts.iter().enumerate() {
            if parts[..i].iter().any(|(prev, _)| prev == addr) {
                return Err(CoordinatorError::BadPlacement {
                    reason: format!("address {addr} assigned to more than one shard"),
                });
            }
            if ids.windows(2).any(|w| w[0] >= w[1]) {
                return Err(CoordinatorError::BadPlacement {
                    reason: format!("shard {i} ids are not strictly ascending"),
                });
            }
            for &id in ids {
                if id >= total || seen[id] {
                    return Err(CoordinatorError::BadPlacement {
                        reason: format!("global id {id} out of range or doubly assigned"),
                    });
                }
                seen[id] = true;
            }
        }
        Ok(Placement {
            shards: parts
                .into_iter()
                .map(|(addr, global_ids)| PlacementShard { addr, global_ids })
                .collect(),
            total_trajs: total,
        })
    }

    /// The shards, in shard order.
    #[must_use]
    pub fn shards(&self) -> &[PlacementShard] {
        &self.shards
    }

    /// Total trajectories across all shards.
    #[must_use]
    pub fn total_trajs(&self) -> usize {
        self.total_trajs
    }
}

/// What the coordinator does when a shard fails a request (after
/// exhausting its retries).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailurePolicy {
    /// The whole batch fails with [`CoordinatorError::ShardFailed`].
    FailFast,
    /// Answer from the surviving shards and report the missing ones in
    /// [`ResponseStatus::Degraded`]. Still fails when *no* shard
    /// survives.
    Degrade,
}

/// Coordinator tuning: deadlines, retry budget, default failure policy.
#[derive(Debug, Clone, Copy)]
pub struct CoordinatorOptions {
    /// Deadline for dialing one shard.
    pub connect_timeout: Duration,
    /// Deadline for each socket read/write of one shard request.
    pub request_timeout: Duration,
    /// Retries per shard per batch after the first attempt fails. Each
    /// retry reconnects (the old connection is presumed poisoned).
    pub retries: u32,
    /// Backoff before retry `n` is `backoff * n` (linear).
    pub backoff: Duration,
    /// Failure policy used by [`Coordinator::execute_batch`];
    /// [`Coordinator::execute_batch_with`] overrides it per request.
    pub policy: FailurePolicy,
}

impl Default for CoordinatorOptions {
    fn default() -> Self {
        CoordinatorOptions {
            connect_timeout: Duration::from_secs(1),
            request_timeout: Duration::from_secs(5),
            retries: 2,
            backoff: Duration::from_millis(50),
            policy: FailurePolicy::FailFast,
        }
    }
}

/// Everything that can go wrong coordinating a distributed batch.
#[derive(Debug)]
pub enum CoordinatorError {
    /// A manifest entry has no `addr=` assignment, so it cannot serve
    /// as a placement map.
    MissingAddr {
        /// The address-less shard file.
        file: String,
    },
    /// The placement parts do not form a valid shard cover.
    BadPlacement {
        /// What is wrong.
        reason: String,
    },
    /// A shard could not be reached or did not answer (after retries).
    ShardFailed {
        /// Shard index in placement order.
        shard: usize,
        /// The address dialed.
        addr: String,
        /// The final wire-level failure.
        source: WireError,
    },
    /// A shard answered with well-formed frames that violate the
    /// shard protocol (wrong result variant, out-of-range local id).
    Protocol {
        /// Shard index in placement order.
        shard: usize,
        /// The shard's address.
        addr: String,
        /// What it did wrong.
        reason: &'static str,
    },
}

impl fmt::Display for CoordinatorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoordinatorError::MissingAddr { file } => {
                write!(f, "shard {file} has no address in the manifest")
            }
            CoordinatorError::BadPlacement { reason } => {
                write!(f, "bad placement: {reason}")
            }
            CoordinatorError::ShardFailed {
                shard,
                addr,
                source,
            } => write!(f, "shard {shard} ({addr}) failed: {source}"),
            CoordinatorError::Protocol {
                shard,
                addr,
                reason,
            } => write!(f, "shard {shard} ({addr}) broke protocol: {reason}"),
        }
    }
}

impl std::error::Error for CoordinatorError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoordinatorError::ShardFailed { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Whether a [`DistributedResponse`] covered every shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResponseStatus {
    /// Every shard answered; results are byte-identical to in-process
    /// execution over the whole database.
    Complete,
    /// Some shards were unreachable; results are correct over the
    /// surviving shards only.
    Degraded {
        /// Placement indexes of the shards that did not answer.
        missing_shards: Vec<usize>,
    },
}

/// A merged distributed answer plus how complete it is.
#[derive(Debug)]
pub struct DistributedResponse {
    /// Merged results, in submission order.
    pub results: Vec<QueryResult>,
    /// Complete, or degraded with the missing shard indexes.
    pub status: ResponseStatus,
    /// The wire-level failure behind each missing shard (empty when
    /// complete).
    pub failures: Vec<(usize, WireError)>,
}

struct ShardConn {
    addr: String,
    global_ids: Vec<TrajId>,
    client: Option<Client>,
}

/// A connected distributed database: one reusable connection per shard
/// plus the placement map. See the [module docs](self) for the merge
/// and failure semantics.
pub struct Coordinator {
    shards: Vec<ShardConn>,
    total_trajs: usize,
    opts: CoordinatorOptions,
}

impl Coordinator {
    /// Dials every shard in the placement map and verifies each
    /// handshake ([`Client::hello`]) against it: a shard serving a
    /// different trajectory count than the manifest assigns is a
    /// connect-time error, not a silently wrong merge later.
    pub fn connect(
        placement: Placement,
        opts: CoordinatorOptions,
    ) -> Result<Coordinator, CoordinatorError> {
        let mut shards = Vec::with_capacity(placement.shards.len());
        for (i, p) in placement.shards.into_iter().enumerate() {
            let mut conn = ShardConn {
                addr: p.addr,
                global_ids: p.global_ids,
                client: None,
            };
            connect_shard(&mut conn, &opts).map_err(|source| CoordinatorError::ShardFailed {
                shard: i,
                addr: conn.addr.clone(),
                source,
            })?;
            shards.push(conn);
        }
        Ok(Coordinator {
            shards,
            total_trajs: placement.total_trajs,
            opts,
        })
    }

    /// Number of shards in the placement.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total trajectories across all shards.
    #[must_use]
    pub fn total_trajs(&self) -> usize {
        self.total_trajs
    }

    /// Executes a batch with the configured default
    /// [`CoordinatorOptions::policy`].
    pub fn execute_batch(
        &mut self,
        batch: &QueryBatch,
    ) -> Result<DistributedResponse, CoordinatorError> {
        self.execute_batch_with(batch, self.opts.policy)
    }

    /// Executes a batch under an explicit per-request failure policy:
    /// the whole batch goes to every shard in parallel, each shard
    /// retries independently (with backoff + reconnect), and the
    /// per-shard answers merge exactly as the in-process fan-out does.
    pub fn execute_batch_with(
        &mut self,
        batch: &QueryBatch,
        policy: FailurePolicy,
    ) -> Result<DistributedResponse, CoordinatorError> {
        let opts = self.opts;
        let outcomes: Vec<Result<Vec<ShardResult>, WireError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter_mut()
                .map(|conn| scope.spawn(move || shard_round(conn, batch, &opts)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard fan-out thread panicked"))
                .collect()
        });

        let mut per_shard: Vec<Option<Vec<ShardResult>>> = Vec::with_capacity(outcomes.len());
        let mut failures: Vec<(usize, WireError)> = Vec::new();
        for (i, outcome) in outcomes.into_iter().enumerate() {
            match outcome {
                Ok(results) => per_shard.push(Some(results)),
                Err(source) => match policy {
                    FailurePolicy::FailFast => {
                        return Err(CoordinatorError::ShardFailed {
                            shard: i,
                            addr: self.shards[i].addr.clone(),
                            source,
                        })
                    }
                    FailurePolicy::Degrade => {
                        failures.push((i, source));
                        per_shard.push(None);
                    }
                },
            }
        }
        // Degrading to an empty shard set would answer every query with
        // nothing — that is an outage, not a degraded answer.
        if !self.shards.is_empty() && per_shard.iter().all(Option::is_none) {
            let (shard, source) = failures.swap_remove(0);
            return Err(CoordinatorError::ShardFailed {
                shard,
                addr: self.shards[shard].addr.clone(),
                source,
            });
        }

        let results = self.merge(batch, &per_shard)?;
        let missing_shards: Vec<usize> = failures.iter().map(|&(i, _)| i).collect();
        let status = if missing_shards.is_empty() {
            ResponseStatus::Complete
        } else {
            ResponseStatus::Degraded { missing_shards }
        };
        Ok(DistributedResponse {
            results,
            status,
            failures,
        })
    }

    /// Merges per-shard raw results into final answers — the remote
    /// twin of `ShardedQueryEngine`'s in-process merge. `per_shard[s]`
    /// is `None` for shards the failure policy degraded away.
    fn merge(
        &self,
        batch: &QueryBatch,
        per_shard: &[Option<Vec<ShardResult>>],
    ) -> Result<Vec<QueryResult>, CoordinatorError> {
        let available: Vec<usize> = per_shard
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.as_ref().map(|_| i))
            .collect();
        // The ascending id universe the kNN infinite-fill draws from:
        // the union of the answering shards' global ids — equal to
        // `0..total` when every shard answered (preserving
        // byte-identity with in-process execution), the reachable
        // subset when degraded.
        let mut universe: Vec<TrajId> = available
            .iter()
            .flat_map(|&s| self.shards[s].global_ids.iter().copied())
            .collect();
        universe.sort_unstable();

        let mut out = Vec::with_capacity(batch.len());
        for (qi, q) in batch.queries().iter().enumerate() {
            let result = match q {
                Query::Range(_) => QueryResult::Range(self.merge_ids(qi, &available, per_shard)?),
                Query::Similarity(_) => {
                    QueryResult::Similarity(self.merge_ids(qi, &available, per_shard)?)
                }
                Query::Knn(k) => {
                    let mut streams = Vec::with_capacity(available.len());
                    for &s in &available {
                        let ShardResult::Candidates(cands) = &shard_results(per_shard, s)[qi]
                        else {
                            return Err(self.protocol(s, "expected knn candidates"));
                        };
                        let mut remapped = Vec::with_capacity(cands.len());
                        for &(d, local) in cands {
                            remapped.push((d, self.remap_one(s, local)?));
                        }
                        streams.push(remapped);
                    }
                    let merged = merge_knn_candidates(k.k, &streams);
                    QueryResult::Knn(knn_take_fill(k.k, &merged, universe.iter().copied()))
                }
                Query::RangeKept(_) => {
                    // `Some` only when at least one shard answered and
                    // every answering shard served its kept bitmap —
                    // mirroring `ShardedQueryEngine::has_kept_bitmaps`.
                    let mut lists = Vec::with_capacity(available.len());
                    let mut all_kept = !available.is_empty();
                    for &s in &available {
                        match &shard_results(per_shard, s)[qi] {
                            ShardResult::Kept(Some(ids)) => {
                                lists.push(self.remap(s, ids)?);
                            }
                            ShardResult::Kept(None) => all_kept = false,
                            _ => return Err(self.protocol(s, "expected kept hits")),
                        }
                    }
                    QueryResult::RangeKept(all_kept.then(|| merge_global_ids(lists)))
                }
            };
            out.push(result);
        }
        Ok(out)
    }

    fn merge_ids(
        &self,
        qi: usize,
        available: &[usize],
        per_shard: &[Option<Vec<ShardResult>>],
    ) -> Result<Vec<TrajId>, CoordinatorError> {
        let mut lists = Vec::with_capacity(available.len());
        for &s in available {
            let ShardResult::Ids(ids) = &shard_results(per_shard, s)[qi] else {
                return Err(self.protocol(s, "expected id hits"));
            };
            lists.push(self.remap(s, ids)?);
        }
        Ok(merge_global_ids(lists))
    }

    fn remap_one(&self, shard: usize, local: TrajId) -> Result<TrajId, CoordinatorError> {
        self.shards[shard]
            .global_ids
            .get(local)
            .copied()
            .ok_or_else(|| self.protocol(shard, "shard-local id out of placement range"))
    }

    fn remap(&self, shard: usize, local: &[TrajId]) -> Result<Vec<TrajId>, CoordinatorError> {
        local.iter().map(|&l| self.remap_one(shard, l)).collect()
    }

    fn protocol(&self, shard: usize, reason: &'static str) -> CoordinatorError {
        CoordinatorError::Protocol {
            shard,
            addr: self.shards[shard].addr.clone(),
            reason,
        }
    }
}

fn shard_results(per_shard: &[Option<Vec<ShardResult>>], s: usize) -> &[ShardResult] {
    per_shard[s].as_deref().expect("shard listed as available")
}

/// Dials one shard and runs the handshake, verifying the shard serves
/// exactly the trajectory count the placement map assigns to it.
fn connect_shard(conn: &mut ShardConn, opts: &CoordinatorOptions) -> Result<(), WireError> {
    let cfg = ClientConfig {
        connect_timeout: Some(opts.connect_timeout),
        read_timeout: Some(opts.request_timeout),
        write_timeout: Some(opts.request_timeout),
    };
    let mut client = Client::connect_with(conn.addr.as_str(), &cfg)?;
    let info = client.hello()?;
    if info.trajs as usize != conn.global_ids.len() {
        return Err(WireError::Malformed {
            reason: "shard serves a different trajectory count than the placement map assigns",
        });
    }
    conn.client = Some(client);
    Ok(())
}

/// One shard's share of a batch: send, and on failure retry with
/// linear backoff, reconnecting each time (the old connection is
/// presumed poisoned — half-written frames desynchronize the stream).
fn shard_round(
    conn: &mut ShardConn,
    batch: &QueryBatch,
    opts: &CoordinatorOptions,
) -> Result<Vec<ShardResult>, WireError> {
    let mut attempt = 0u32;
    loop {
        let result = match conn.client.as_mut() {
            Some(client) => client.execute_shard_batch(batch),
            None => connect_shard(conn, opts).and_then(|()| {
                conn.client
                    .as_mut()
                    .expect("just connected")
                    .execute_shard_batch(batch)
            }),
        };
        match result {
            Ok(results) => return Ok(results),
            Err(e) => {
                conn.client = None;
                if attempt >= opts.retries {
                    return Err(e);
                }
                attempt += 1;
                std::thread::sleep(opts.backoff * attempt);
            }
        }
    }
}
