//! The distributed query coordinator: routes a [`QueryBatch`] to the
//! shard *processes* whose bounds can contribute, fans the sub-batches
//! out over the wire, and merges the raw per-shard answers exactly as
//! `ShardedQueryEngine` merges in-process shards.
//!
//! The shard manifest doubles as the placement map: each
//! [`ShardEntry`](trajectory::shard::ShardEntry) carries an optional
//! `addr=` token naming the `shardd` process serving that shard's
//! snapshot, and a `bounds=` token with the shard's bounding cube.
//! [`Placement::from_manifest`] reads both, [`Coordinator::connect`]
//! dials every shard *in parallel* (with a bounded connect timeout)
//! and cross-checks each one's [`ShardInfo`](crate::wire::ShardInfo)
//! handshake against the placement map — trajectory count *and*
//! bounding cube must agree — and [`Coordinator::execute_batch`] runs
//! the fan-out:
//!
//! - **bound-pruned routing**: each shard receives a sub-batch of only
//!   the queries whose answer can involve its data, decided by the
//!   same [`query_touches_bounds`] predicate the in-process
//!   `ShardedQueryEngine` prunes with. A shard every query prunes away
//!   gets *no frame at all* for that round — a dead shard the routing
//!   never touches cannot degrade the answer;
//! - sub-batches travel as id-tagged
//!   [`Message::ShardRequest`](crate::wire::Message) frames over a
//!   small per-shard connection pool, so several coalesced rounds stay
//!   in flight concurrently while every reply is still paired with its
//!   request by the echoed id;
//! - range/similarity hits come back shard-local, are remapped through
//!   the placement map's `global_ids`, and merge by concatenation +
//!   sort ([`merge_global_ids`]);
//! - kNN candidates come back scored; after the same remap they feed
//!   the global k-heap ([`merge_knn_candidates`]) and the single-store
//!   infinite-fill policy ([`knn_take_fill`]) — byte-identical to the
//!   in-process merge. Pruned (but healthy) shards stay in the fill
//!   universe: pruning is result-neutral, only *failures* shrink it;
//! - kept-bitmap range results are `Some` only when every non-failed
//!   shard has its kept bitmap — answering shards report it in-band,
//!   pruned shards are covered by the `has_kept` they declared at
//!   handshake — mirroring `ShardedQueryEngine::has_kept_bitmaps`.
//!
//! Failures are first-class: per-shard connect/request timeouts,
//! bounded retries with linear backoff and reconnection, and a
//! per-request [`FailurePolicy`] — [`FailurePolicy::FailFast`] turns
//! any shard failure into a typed [`CoordinatorError::ShardFailed`],
//! while [`FailurePolicy::Degrade`] answers from the surviving shards
//! and reports [`ResponseStatus::Degraded`] with the missing shard
//! indexes (a *correct* answer over the reachable subset — the kNN
//! infinite-fill universe shrinks to the survivors' ids — never a
//! silently wrong one). Pooled connections are reused across rounds
//! and re-dialed transparently after a failure.
//!
//! [`SharedCoordinator`] adds the same admission/linger layer the
//! in-process [`Server`](crate::Server) uses in front of the fan-out:
//! many connections (or threads) submit batches concurrently, a small
//! pool of executor threads coalesces everything that arrived together
//! into one wire round per shard, and each submitter gets its slice of
//! the merged answer back. [`Coordinator::stats`] reports how well
//! that works: coalesced rounds, queries per round, and frames
//! sent vs pruned per shard.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, SyncSender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use traj_query::{
    knn_take_fill, merge_global_ids, merge_knn_candidates, query_touches_bounds, Query, QueryBatch,
    QueryResult,
};
use trajectory::shard::ShardSet;
use trajectory::{Cube, TrajId};

use crate::client::{Client, ClientConfig};
use crate::server::BatchConfig;
use crate::wire::{ShardInfo, ShardResult, WireError};

/// Idle connections kept per shard. Concurrency beyond the cap still
/// works — extra connections are dialed on demand and dropped on
/// check-in instead of pooled.
const POOL_CAP: usize = 8;

/// Where one shard of a distributed database lives: the address of the
/// process serving it, the global trajectory ids it holds (strictly
/// ascending — shard-local order is global order), and its bounding
/// cube when the manifest records one (used to prune routing; `None`
/// routes every query to the shard).
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementShard {
    /// `host:port` of the serving process.
    pub addr: String,
    /// `global_ids[local]` = global trajectory id.
    pub global_ids: Vec<TrajId>,
    /// The shard's bounding cube from the manifest, if recorded.
    pub bounds: Option<Cube>,
}

/// The placement map: one [`PlacementShard`] per shard, together
/// covering global ids `0..total_trajs` exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    shards: Vec<PlacementShard>,
    total_trajs: usize,
}

impl Placement {
    /// Reads a [`ShardSet`] manifest as a placement map. Every entry
    /// must carry an `addr=` assignment (see `ShardSet::set_addrs`);
    /// id-level validity (sorted, disjoint, covering) was already
    /// enforced by `ShardSet::load`. `bounds=` tokens, when present,
    /// become the shards' routing bounds and are cross-checked against
    /// each shard's handshake at connect time.
    pub fn from_manifest(set: &ShardSet) -> Result<Placement, CoordinatorError> {
        let mut shards = Vec::with_capacity(set.len());
        for e in set.entries() {
            let addr = e
                .addr
                .clone()
                .ok_or_else(|| CoordinatorError::MissingAddr {
                    file: e.file.clone(),
                })?;
            shards.push(PlacementShard {
                addr,
                global_ids: e.global_ids.clone(),
                bounds: e.bounds,
            });
        }
        Ok(Placement {
            shards,
            total_trajs: set.total_trajs(),
        })
    }

    /// Builds a placement from explicit `(addr, global_ids)` parts,
    /// validating what `ShardSet::load` would: ids strictly ascending
    /// per shard, disjoint across shards, covering `0..total` exactly,
    /// and pairwise-distinct addresses. Shards get no manifest bounds;
    /// the coordinator adopts whatever bounds each shard declares in
    /// its handshake.
    pub fn from_parts(parts: Vec<(String, Vec<TrajId>)>) -> Result<Placement, CoordinatorError> {
        let total: usize = parts.iter().map(|(_, ids)| ids.len()).sum();
        let mut seen = vec![false; total];
        for (i, (addr, ids)) in parts.iter().enumerate() {
            if parts[..i].iter().any(|(prev, _)| prev == addr) {
                return Err(CoordinatorError::BadPlacement {
                    reason: format!("address {addr} assigned to more than one shard"),
                });
            }
            if ids.windows(2).any(|w| w[0] >= w[1]) {
                return Err(CoordinatorError::BadPlacement {
                    reason: format!("shard {i} ids are not strictly ascending"),
                });
            }
            for &id in ids {
                if id >= total || seen[id] {
                    return Err(CoordinatorError::BadPlacement {
                        reason: format!("global id {id} out of range or doubly assigned"),
                    });
                }
                seen[id] = true;
            }
        }
        Ok(Placement {
            shards: parts
                .into_iter()
                .map(|(addr, global_ids)| PlacementShard {
                    addr,
                    global_ids,
                    bounds: None,
                })
                .collect(),
            total_trajs: total,
        })
    }

    /// The shards, in shard order.
    #[must_use]
    pub fn shards(&self) -> &[PlacementShard] {
        &self.shards
    }

    /// Total trajectories across all shards.
    #[must_use]
    pub fn total_trajs(&self) -> usize {
        self.total_trajs
    }
}

/// What the coordinator does when a shard fails a request (after
/// exhausting its retries).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailurePolicy {
    /// The whole batch fails with [`CoordinatorError::ShardFailed`].
    FailFast,
    /// Answer from the surviving shards and report the missing ones in
    /// [`ResponseStatus::Degraded`]. Still fails when *no* shard
    /// survives.
    Degrade,
}

/// Coordinator tuning: deadlines, retry budget, default failure policy.
#[derive(Debug, Clone, Copy)]
pub struct CoordinatorOptions {
    /// Deadline for dialing one shard.
    pub connect_timeout: Duration,
    /// Deadline for each socket read/write of one shard request.
    pub request_timeout: Duration,
    /// Retries per shard per batch after the first attempt fails. Each
    /// retry reconnects (the old connection is presumed poisoned).
    pub retries: u32,
    /// Backoff before retry `n` is `backoff * n` (linear).
    pub backoff: Duration,
    /// Failure policy used by [`Coordinator::execute_batch`];
    /// [`Coordinator::execute_batch_with`] overrides it per request.
    pub policy: FailurePolicy,
}

impl Default for CoordinatorOptions {
    fn default() -> Self {
        CoordinatorOptions {
            connect_timeout: Duration::from_secs(1),
            request_timeout: Duration::from_secs(5),
            retries: 2,
            backoff: Duration::from_millis(50),
            policy: FailurePolicy::FailFast,
        }
    }
}

/// Everything that can go wrong coordinating a distributed batch.
#[derive(Debug, Clone)]
pub enum CoordinatorError {
    /// A manifest entry has no `addr=` assignment, so it cannot serve
    /// as a placement map.
    MissingAddr {
        /// The address-less shard file.
        file: String,
    },
    /// The placement parts do not form a valid shard cover.
    BadPlacement {
        /// What is wrong.
        reason: String,
    },
    /// A shard could not be reached or did not answer (after retries).
    ShardFailed {
        /// Shard index in placement order.
        shard: usize,
        /// The address dialed.
        addr: String,
        /// The final wire-level failure.
        source: WireError,
    },
    /// A shard answered with well-formed frames that violate the
    /// shard protocol (wrong result variant, out-of-range local id).
    Protocol {
        /// Shard index in placement order.
        shard: usize,
        /// The shard's address.
        addr: String,
        /// What it did wrong.
        reason: &'static str,
    },
    /// The [`SharedCoordinator`] was shut down while this batch was
    /// queued or in flight.
    Closed,
}

impl fmt::Display for CoordinatorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoordinatorError::MissingAddr { file } => {
                write!(f, "shard {file} has no address in the manifest")
            }
            CoordinatorError::BadPlacement { reason } => {
                write!(f, "bad placement: {reason}")
            }
            CoordinatorError::ShardFailed {
                shard,
                addr,
                source,
            } => write!(f, "shard {shard} ({addr}) failed: {source}"),
            CoordinatorError::Protocol {
                shard,
                addr,
                reason,
            } => write!(f, "shard {shard} ({addr}) broke protocol: {reason}"),
            CoordinatorError::Closed => {
                write!(f, "the shared coordinator is shut down")
            }
        }
    }
}

impl std::error::Error for CoordinatorError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoordinatorError::ShardFailed { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Whether a [`DistributedResponse`] covered every shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResponseStatus {
    /// Every shard the routing needed answered; results are
    /// byte-identical to in-process execution over the whole database.
    Complete,
    /// Some contacted shards were unreachable; results are correct
    /// over the surviving shards only.
    Degraded {
        /// Placement indexes of the shards that did not answer.
        missing_shards: Vec<usize>,
    },
}

/// A merged distributed answer plus how complete it is.
#[derive(Debug, Clone)]
pub struct DistributedResponse {
    /// Merged results, in submission order.
    pub results: Vec<QueryResult>,
    /// Complete, or degraded with the missing shard indexes.
    pub status: ResponseStatus,
    /// The wire-level failure behind each missing shard (empty when
    /// complete).
    pub failures: Vec<(usize, WireError)>,
}

/// Frame counters for one shard, snapshotted by [`Coordinator::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardFrameStats {
    /// Rounds in which this shard was sent a sub-batch frame.
    pub frames_sent: u64,
    /// Rounds in which bound-pruned routing skipped this shard
    /// entirely — no frame on the wire.
    pub frames_pruned: u64,
}

/// A point-in-time snapshot of a coordinator's counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CoordinatorStats {
    /// Fan-out rounds run ([`Coordinator::execute_batch`] calls —
    /// coalesced rounds when driven by a [`SharedCoordinator`]).
    pub rounds: u64,
    /// Queries across all rounds.
    pub queries: u64,
    /// Per-shard frame counters, in placement order.
    pub shards: Vec<ShardFrameStats>,
}

impl CoordinatorStats {
    /// Mean queries per fan-out round (0 when none ran) — the coalesced
    /// batch size when a [`SharedCoordinator`] feeds the rounds.
    #[must_use]
    pub fn mean_coalesced_batch(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.queries as f64 / self.rounds as f64
        }
    }

    /// Total sub-batch frames sent across all shards.
    #[must_use]
    pub fn frames_sent(&self) -> u64 {
        self.shards.iter().map(|s| s.frames_sent).sum()
    }

    /// Total shard rounds skipped by bound-pruned routing.
    #[must_use]
    pub fn frames_pruned(&self) -> u64 {
        self.shards.iter().map(|s| s.frames_pruned).sum()
    }
}

struct ShardConn {
    addr: String,
    global_ids: Vec<TrajId>,
    /// Routing bounds: the manifest's when recorded, else adopted from
    /// the shard's handshake. `None` (an empty shard) routes nothing
    /// away — every query is sent.
    bounds: Option<Cube>,
    /// Kept-bitmap presence from the handshake; consulted for queries
    /// routed away from this shard when merging `RangeKept`.
    has_kept: bool,
    /// Idle pooled connections; concurrent rounds check out distinct
    /// connections so several id-tagged frames stay in flight at once.
    pool: Mutex<Vec<Client>>,
    frames_sent: AtomicU64,
    frames_pruned: AtomicU64,
}

impl ShardConn {
    fn checkout(&self) -> Option<Client> {
        self.pool.lock().expect("pool lock").pop()
    }

    fn checkin(&self, client: Client) {
        let mut pool = self.pool.lock().expect("pool lock");
        if pool.len() < POOL_CAP {
            pool.push(client);
        }
    }
}

/// A connected distributed database: a connection pool per shard plus
/// the placement map. Shared by reference — every method takes `&self`,
/// so one coordinator serves any number of concurrent callers (see
/// [`SharedCoordinator`] for the coalescing front). See the
/// [module docs](self) for the routing, merge, and failure semantics.
pub struct Coordinator {
    shards: Vec<ShardConn>,
    total_trajs: usize,
    opts: CoordinatorOptions,
    next_id: AtomicU64,
    rounds: AtomicU64,
    queries: AtomicU64,
}

impl Coordinator {
    /// Dials every shard in the placement map — in parallel, one
    /// thread per shard — and verifies each handshake
    /// ([`Client::hello`]) against it: a shard serving a different
    /// trajectory count, or declaring different bounds than the
    /// manifest records, is a connect-time error, not a silently wrong
    /// (or wrongly pruned) merge later.
    pub fn connect(
        placement: Placement,
        opts: CoordinatorOptions,
    ) -> Result<Coordinator, CoordinatorError> {
        let dialed: Vec<Result<(Client, ShardInfo), WireError>> = std::thread::scope(|scope| {
            let opts = &opts;
            let handles: Vec<_> = placement
                .shards
                .iter()
                .map(|p| {
                    scope.spawn(move || {
                        dial_shard(&p.addr, p.global_ids.len(), p.bounds.as_ref(), opts)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard connect thread panicked"))
                .collect()
        });

        let mut shards = Vec::with_capacity(placement.shards.len());
        for (i, (p, dial)) in placement.shards.into_iter().zip(dialed).enumerate() {
            let (client, info) = dial.map_err(|source| CoordinatorError::ShardFailed {
                shard: i,
                addr: p.addr.clone(),
                source,
            })?;
            shards.push(ShardConn {
                addr: p.addr,
                global_ids: p.global_ids,
                bounds: p.bounds.or(info.bounds),
                has_kept: info.has_kept,
                pool: Mutex::new(vec![client]),
                frames_sent: AtomicU64::new(0),
                frames_pruned: AtomicU64::new(0),
            });
        }
        Ok(Coordinator {
            shards,
            total_trajs: placement.total_trajs,
            opts,
            next_id: AtomicU64::new(0),
            rounds: AtomicU64::new(0),
            queries: AtomicU64::new(0),
        })
    }

    /// Number of shards in the placement.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total trajectories across all shards.
    #[must_use]
    pub fn total_trajs(&self) -> usize {
        self.total_trajs
    }

    /// The routing bounds per shard (manifest, or adopted from the
    /// handshake), in placement order.
    #[must_use]
    pub fn shard_bounds(&self) -> Vec<Option<Cube>> {
        self.shards.iter().map(|s| s.bounds).collect()
    }

    /// Current counters: rounds, queries, frames sent vs pruned.
    #[must_use]
    pub fn stats(&self) -> CoordinatorStats {
        CoordinatorStats {
            rounds: self.rounds.load(Ordering::Relaxed),
            queries: self.queries.load(Ordering::Relaxed),
            shards: self
                .shards
                .iter()
                .map(|s| ShardFrameStats {
                    frames_sent: s.frames_sent.load(Ordering::Relaxed),
                    frames_pruned: s.frames_pruned.load(Ordering::Relaxed),
                })
                .collect(),
        }
    }

    /// Executes a batch with the configured default
    /// [`CoordinatorOptions::policy`].
    pub fn execute_batch(
        &self,
        batch: &QueryBatch,
    ) -> Result<DistributedResponse, CoordinatorError> {
        self.execute_batch_with(batch, self.opts.policy)
    }

    /// Executes a batch under an explicit per-request failure policy:
    /// each shard receives — in parallel, on a pooled connection — a
    /// sub-batch of only the queries its bounds can answer (none ⇒ no
    /// frame at all), each shard retries independently (with backoff +
    /// reconnect), and the per-shard answers merge exactly as the
    /// in-process fan-out does.
    pub fn execute_batch_with(
        &self,
        batch: &QueryBatch,
        policy: FailurePolicy,
    ) -> Result<DistributedResponse, CoordinatorError> {
        self.rounds.fetch_add(1, Ordering::Relaxed);
        self.queries
            .fetch_add(batch.len() as u64, Ordering::Relaxed);

        // Route: for each shard, the batch indexes whose answer can
        // involve that shard's data — the same pruning rules the
        // in-process engine applies, so skipping the rest cannot
        // change answers.
        let routes: Vec<Vec<usize>> = self
            .shards
            .iter()
            .map(|conn| match &conn.bounds {
                Some(b) => batch
                    .queries()
                    .iter()
                    .enumerate()
                    .filter(|(_, q)| query_touches_bounds(q, b))
                    .map(|(qi, _)| qi)
                    .collect(),
                None => (0..batch.len()).collect(),
            })
            .collect();

        let opts = self.opts;
        // `None` = pruned (no frame sent); `Some(outcome)` = contacted.
        let outcomes: Vec<Option<Result<Vec<ShardResult>, WireError>>> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .shards
                    .iter()
                    .zip(&routes)
                    .map(|(conn, route)| {
                        scope.spawn(move || {
                            if route.is_empty() {
                                conn.frames_pruned.fetch_add(1, Ordering::Relaxed);
                                return None;
                            }
                            conn.frames_sent.fetch_add(1, Ordering::Relaxed);
                            let sub = QueryBatch::from_queries(
                                route
                                    .iter()
                                    .map(|&qi| batch.queries()[qi].clone())
                                    .collect(),
                            );
                            let id = self.next_id.fetch_add(1, Ordering::Relaxed);
                            Some(shard_round(conn, &sub, &opts, id))
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("shard fan-out thread panicked"))
                    .collect()
            });

        let mut per_shard: Vec<Option<Vec<ShardResult>>> = Vec::with_capacity(outcomes.len());
        let mut failed = vec![false; self.shards.len()];
        let mut failures: Vec<(usize, WireError)> = Vec::new();
        for (i, outcome) in outcomes.into_iter().enumerate() {
            match outcome {
                // Pruned: never contacted, so it can neither answer nor
                // fail — its (empty) contribution is known from bounds.
                None => per_shard.push(None),
                Some(Ok(results)) => per_shard.push(Some(results)),
                Some(Err(source)) => match policy {
                    FailurePolicy::FailFast => {
                        return Err(CoordinatorError::ShardFailed {
                            shard: i,
                            addr: self.shards[i].addr.clone(),
                            source,
                        })
                    }
                    FailurePolicy::Degrade => {
                        failed[i] = true;
                        failures.push((i, source));
                        per_shard.push(None);
                    }
                },
            }
        }
        // Degrading to an empty shard set would answer every query with
        // nothing — that is an outage, not a degraded answer. (Pruned
        // shards count as survivors: their contribution is known.)
        if !self.shards.is_empty() && failed.iter().all(|&f| f) {
            let (shard, source) = failures.swap_remove(0);
            return Err(CoordinatorError::ShardFailed {
                shard,
                addr: self.shards[shard].addr.clone(),
                source,
            });
        }

        let results = self.merge(batch, &per_shard, &routes, &failed)?;
        let missing_shards: Vec<usize> = failures.iter().map(|&(i, _)| i).collect();
        let status = if missing_shards.is_empty() {
            ResponseStatus::Complete
        } else {
            ResponseStatus::Degraded { missing_shards }
        };
        Ok(DistributedResponse {
            results,
            status,
            failures,
        })
    }

    /// Merges per-shard raw results into final answers — the remote
    /// twin of `ShardedQueryEngine`'s in-process merge. `per_shard[s]`
    /// is `None` for shards that were pruned or degraded away
    /// (`failed` distinguishes the two); `routes[s]` maps each shard's
    /// sub-batch positions back to batch indexes.
    fn merge(
        &self,
        batch: &QueryBatch,
        per_shard: &[Option<Vec<ShardResult>>],
        routes: &[Vec<usize>],
        failed: &[bool],
    ) -> Result<Vec<QueryResult>, CoordinatorError> {
        let answered: Vec<usize> = per_shard
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.as_ref().map(|_| i))
            .collect();
        // The ascending id universe the kNN infinite-fill draws from:
        // the union of every non-*failed* shard's global ids — equal
        // to `0..total` when no shard failed (preserving byte-identity
        // with in-process execution; pruned shards' data is still part
        // of the database being answered over), the reachable subset
        // when degraded.
        let mut universe: Vec<TrajId> = (0..self.shards.len())
            .filter(|&s| !failed[s])
            .flat_map(|s| self.shards[s].global_ids.iter().copied())
            .collect();
        universe.sort_unstable();

        // pos[s][qi] = position of batch query `qi` in shard `s`'s
        // sub-batch, or `usize::MAX` when routed away from it.
        let pos: Vec<Vec<usize>> = routes
            .iter()
            .map(|route| {
                let mut p = vec![usize::MAX; batch.len()];
                for (j, &qi) in route.iter().enumerate() {
                    p[qi] = j;
                }
                p
            })
            .collect();

        let mut out = Vec::with_capacity(batch.len());
        for (qi, q) in batch.queries().iter().enumerate() {
            let result = match q {
                Query::Range(_) => {
                    QueryResult::Range(self.merge_ids(qi, &answered, per_shard, &pos)?)
                }
                Query::Similarity(_) => {
                    QueryResult::Similarity(self.merge_ids(qi, &answered, per_shard, &pos)?)
                }
                Query::Knn(k) => {
                    let mut streams = Vec::with_capacity(answered.len());
                    for &s in &answered {
                        let j = pos[s][qi];
                        if j == usize::MAX {
                            continue; // routed away: contributes no candidates
                        }
                        let ShardResult::Candidates(cands) = &shard_results(per_shard, s)[j] else {
                            return Err(self.protocol(s, "expected knn candidates"));
                        };
                        let mut remapped = Vec::with_capacity(cands.len());
                        for &(d, local) in cands {
                            remapped.push((d, self.remap_one(s, local)?));
                        }
                        streams.push(remapped);
                    }
                    let merged = merge_knn_candidates(k.k, &streams);
                    QueryResult::Knn(knn_take_fill(k.k, &merged, universe.iter().copied()))
                }
                Query::RangeKept(_) => {
                    // `Some` only when at least one shard survives and
                    // every surviving shard has its kept bitmap —
                    // answering shards say so in-band, shards this
                    // query was routed away from said so at handshake —
                    // mirroring `ShardedQueryEngine::has_kept_bitmaps`.
                    let mut lists = Vec::with_capacity(answered.len());
                    let mut all_kept = failed.iter().any(|&f| !f);
                    for s in 0..self.shards.len() {
                        if failed[s] {
                            continue;
                        }
                        match per_shard[s].as_ref().map(|r| (r, pos[s][qi])) {
                            Some((results, j)) if j != usize::MAX => match &results[j] {
                                ShardResult::Kept(Some(ids)) => {
                                    lists.push(self.remap(s, ids)?);
                                }
                                ShardResult::Kept(None) => all_kept = false,
                                _ => return Err(self.protocol(s, "expected kept hits")),
                            },
                            // Pruned — whole round or just this query.
                            _ => {
                                if !self.shards[s].has_kept {
                                    all_kept = false;
                                }
                            }
                        }
                    }
                    QueryResult::RangeKept(all_kept.then(|| merge_global_ids(lists)))
                }
            };
            out.push(result);
        }
        Ok(out)
    }

    fn merge_ids(
        &self,
        qi: usize,
        answered: &[usize],
        per_shard: &[Option<Vec<ShardResult>>],
        pos: &[Vec<usize>],
    ) -> Result<Vec<TrajId>, CoordinatorError> {
        let mut lists = Vec::with_capacity(answered.len());
        for &s in answered {
            let j = pos[s][qi];
            if j == usize::MAX {
                continue; // routed away: contributes no hits
            }
            let ShardResult::Ids(ids) = &shard_results(per_shard, s)[j] else {
                return Err(self.protocol(s, "expected id hits"));
            };
            lists.push(self.remap(s, ids)?);
        }
        Ok(merge_global_ids(lists))
    }

    fn remap_one(&self, shard: usize, local: TrajId) -> Result<TrajId, CoordinatorError> {
        self.shards[shard]
            .global_ids
            .get(local)
            .copied()
            .ok_or_else(|| self.protocol(shard, "shard-local id out of placement range"))
    }

    fn remap(&self, shard: usize, local: &[TrajId]) -> Result<Vec<TrajId>, CoordinatorError> {
        local.iter().map(|&l| self.remap_one(shard, l)).collect()
    }

    fn protocol(&self, shard: usize, reason: &'static str) -> CoordinatorError {
        CoordinatorError::Protocol {
            shard,
            addr: self.shards[shard].addr.clone(),
            reason,
        }
    }
}

fn shard_results(per_shard: &[Option<Vec<ShardResult>>], s: usize) -> &[ShardResult] {
    per_shard[s].as_deref().expect("shard listed as answered")
}

/// Dials one shard and runs the handshake, verifying the shard serves
/// exactly the trajectory count — and, when `expected_bounds` is known,
/// exactly the bounding cube — the placement map assigns to it.
fn dial_shard(
    addr: &str,
    expected_trajs: usize,
    expected_bounds: Option<&Cube>,
    opts: &CoordinatorOptions,
) -> Result<(Client, ShardInfo), WireError> {
    let cfg = ClientConfig {
        connect_timeout: Some(opts.connect_timeout),
        read_timeout: Some(opts.request_timeout),
        write_timeout: Some(opts.request_timeout),
    };
    let mut client = Client::connect_with(addr, &cfg)?;
    let info = client.hello()?;
    if info.trajs as usize != expected_trajs {
        return Err(WireError::Malformed {
            reason: "shard serves a different trajectory count than the placement map assigns",
        });
    }
    if let Some(expected) = expected_bounds {
        if info.bounds.as_ref() != Some(expected) {
            return Err(WireError::Malformed {
                reason: "shard declares different bounds than the placement map assigns",
            });
        }
    }
    Ok((client, info))
}

/// One shard's share of a round: check a connection out of the pool
/// (or dial a fresh one, re-verifying the handshake), send the
/// id-tagged sub-batch, and on failure retry with linear backoff on a
/// fresh connection (the old one is presumed poisoned — half-written
/// frames desynchronize the stream). A healthy connection goes back
/// into the pool for the next round.
fn shard_round(
    conn: &ShardConn,
    batch: &QueryBatch,
    opts: &CoordinatorOptions,
    id: u64,
) -> Result<Vec<ShardResult>, WireError> {
    let mut attempt = 0u32;
    loop {
        let result = match conn.checkout() {
            Some(mut client) => client.execute_shard_batch(batch, id).map(|r| (client, r)),
            None => dial_shard(
                &conn.addr,
                conn.global_ids.len(),
                conn.bounds.as_ref(),
                opts,
            )
            .and_then(|(mut client, _)| client.execute_shard_batch(batch, id).map(|r| (client, r))),
        };
        match result {
            Ok((client, results)) => {
                conn.checkin(client);
                return Ok(results);
            }
            Err(e) => {
                if attempt >= opts.retries {
                    return Err(e);
                }
                attempt += 1;
                std::thread::sleep(opts.backoff * attempt);
            }
        }
    }
}

/// One queued submission waiting for a coalesced fan-out round.
struct SharedJob {
    queries: Vec<Query>,
    reply: SyncSender<Result<DistributedResponse, CoordinatorError>>,
}

#[derive(Default)]
struct SharedQueue {
    jobs: VecDeque<SharedJob>,
    queued_queries: usize,
}

struct SharedState {
    coordinator: Coordinator,
    queue: Mutex<SharedQueue>,
    available: Condvar,
    shutting_down: AtomicBool,
}

/// The coalescing front of a [`Coordinator`]: the same admission/linger
/// layer the single-process [`Server`](crate::Server) batches with, put
/// in front of the distributed fan-out. N concurrent callers submit
/// batches; a small pool of executor threads coalesces everything that
/// arrived together into *one* wire round per shard (amortizing
/// framing, syscalls, and shard-side engine passes) and routes each
/// caller's slice of the merged answer back. More than one executor
/// keeps multiple coalesced rounds in flight, pipelined over the
/// coordinator's per-shard connection pools.
///
/// Shareable by reference across threads ([`SharedCoordinator::execute_batch`]
/// takes `&self`); dropping it shuts the executors down.
pub struct SharedCoordinator {
    shared: Arc<SharedState>,
    executors: Vec<JoinHandle<()>>,
    done: bool,
}

impl SharedCoordinator {
    /// Wraps a connected coordinator in an admission queue drained by
    /// `executors` coalescing threads (at least one). `cfg` bounds the
    /// coalesced batch size and the linger window exactly as it does
    /// for [`Server`](crate::Server) batched mode.
    #[must_use]
    pub fn start(
        coordinator: Coordinator,
        cfg: BatchConfig,
        executors: usize,
    ) -> SharedCoordinator {
        let shared = Arc::new(SharedState {
            coordinator,
            queue: Mutex::new(SharedQueue::default()),
            available: Condvar::new(),
            shutting_down: AtomicBool::new(false),
        });
        let executors = (0..executors.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || shared_executor_loop(&shared, cfg))
            })
            .collect();
        SharedCoordinator {
            shared,
            executors,
            done: false,
        }
    }

    /// Submits a batch and blocks until its slice of a coalesced round
    /// comes back. Status and failures reflect the whole round the
    /// batch rode in (a degraded round degrades every rider).
    pub fn execute_batch(
        &self,
        batch: &QueryBatch,
    ) -> Result<DistributedResponse, CoordinatorError> {
        let (tx, rx) = sync_channel(1);
        {
            let mut q = self.shared.queue.lock().expect("queue lock");
            q.queued_queries += batch.len();
            q.jobs.push_back(SharedJob {
                queries: batch.queries().to_vec(),
                reply: tx,
            });
        }
        self.shared.available.notify_one();
        rx.recv().map_err(|_| CoordinatorError::Closed)?
    }

    /// The wrapped coordinator (for stats and placement introspection).
    #[must_use]
    pub fn coordinator(&self) -> &Coordinator {
        &self.shared.coordinator
    }

    /// Current counters of the wrapped coordinator.
    #[must_use]
    pub fn stats(&self) -> CoordinatorStats {
        self.shared.coordinator.stats()
    }

    /// Stops the executors and joins them. Queued or in-flight batches
    /// fail with [`CoordinatorError::Closed`]. Idempotent; also runs on
    /// drop.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        if self.done {
            return;
        }
        self.done = true;
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        self.shared.available.notify_all();
        for h in self.executors.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for SharedCoordinator {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// The admission drain — the distributed twin of the server's executor
/// loop: wait for the first submission, linger briefly so concurrent
/// arrivals coalesce, run everything taken as one fan-out round, and
/// route the slices back.
fn shared_executor_loop(state: &Arc<SharedState>, cfg: BatchConfig) {
    let max_queries = cfg.max_queries.max(1);
    loop {
        let jobs = {
            let mut q = state.queue.lock().expect("queue lock");
            while q.jobs.is_empty() {
                if state.shutting_down.load(Ordering::SeqCst) {
                    return;
                }
                q = state.available.wait(q).expect("queue lock");
            }
            if !cfg.linger.is_zero() {
                let deadline = Instant::now() + cfg.linger;
                while q.queued_queries < max_queries {
                    let now = Instant::now();
                    if now >= deadline || state.shutting_down.load(Ordering::SeqCst) {
                        break;
                    }
                    let (guard, _timeout) = state
                        .available
                        .wait_timeout(q, deadline - now)
                        .expect("queue lock");
                    q = guard;
                }
            }
            // Take whole jobs up to the batch bound (always at least
            // one, so an oversized submission still rides — alone).
            let mut jobs: Vec<SharedJob> = Vec::new();
            let mut taken = 0usize;
            while let Some(job) = q.jobs.front() {
                if !jobs.is_empty() && taken + job.queries.len() > max_queries {
                    break;
                }
                taken += job.queries.len();
                let job = q.jobs.pop_front().expect("front checked");
                jobs.push(job);
            }
            q.queued_queries -= taken;
            jobs
        };
        if jobs.is_empty() {
            continue;
        }

        // One coalesced fan-out round over everything admitted.
        let lens: Vec<usize> = jobs.iter().map(|j| j.queries.len()).collect();
        let mut combined: Vec<Query> = Vec::with_capacity(lens.iter().sum());
        let mut replies = Vec::with_capacity(jobs.len());
        for job in jobs {
            combined.extend(job.queries);
            replies.push(job.reply);
        }
        let batch = QueryBatch::from_queries(combined);
        match state.coordinator.execute_batch(&batch) {
            Ok(resp) => {
                let mut results = resp.results.into_iter();
                for (len, reply) in lens.into_iter().zip(replies) {
                    let slice: Vec<QueryResult> = results.by_ref().take(len).collect();
                    // A receiver that gave up is fine.
                    let _ = reply.send(Ok(DistributedResponse {
                        results: slice,
                        status: resp.status.clone(),
                        failures: resp.failures.clone(),
                    }));
                }
            }
            Err(e) => {
                for reply in replies {
                    let _ = reply.send(Err(e.clone()));
                }
            }
        }
    }
}
