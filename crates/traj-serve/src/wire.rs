//! The framed wire format: versioned, length-prefixed, checksummed
//! little-endian messages carrying [`QueryBatch`] requests and
//! [`QueryResult`] responses.
//!
//! The format mirrors the snapshot codec's discipline — explicit magic,
//! version gate, FNV-1a 64 checksum, typed errors for every corruption
//! class — and reuses its little-endian primitives
//! ([`trajectory::snapshot::put_u32`] and friends), so the network and
//! disk layers speak the same byte order from the same helpers. The
//! byte-level layout is specified (and doc-tested) in
//! `docs/WIRE_FORMAT.md`; see [`crate::format_spec`].
//!
//! Decoding never panics and never allocates ahead of the bytes that
//! back an allocation: counts are validated against the remaining
//! payload length before any `Vec` is sized, oversized length prefixes
//! are rejected before a read is attempted, and the checksum is
//! verified before the payload is parsed.

use std::fmt;
use std::io::{Read, Write};

use traj_query::{Dissimilarity, KnnQuery, Query, QueryBatch, QueryResult, SimilarityQuery};
use trajectory::snapshot::{fnv1a64, get_u32, get_u64, put_u32, put_u64};
use trajectory::{Cube, Point, TrajId, Trajectory};

use traj_query::T2vecEmbedder;

/// Frame magic: `b"QWIR"`.
pub const MAGIC: [u8; 4] = *b"QWIR";
/// Current (and only) wire version.
pub const VERSION: u16 = 1;
/// Fixed frame header size: magic (4) + version (2) + kind (1) +
/// reserved (1) + payload length (4).
pub const HEADER_LEN: usize = 12;
/// Trailing checksum size (FNV-1a 64 over header + payload).
pub const CHECKSUM_LEN: usize = 8;
/// Largest accepted payload. Frames declaring more are rejected with
/// [`WireError::Oversized`] before any buffer is allocated.
pub const MAX_PAYLOAD: usize = 64 << 20;
/// Largest accepted t2vec embedding dimension (keeps a decoded query
/// from committing the server to arbitrarily large per-trajectory
/// embedding work).
pub const MAX_T2VEC_DIM: usize = 1 << 16;

/// Frame kind byte for a [`Message::Request`].
pub const KIND_REQUEST: u8 = 1;
/// Frame kind byte for a [`Message::Response`].
pub const KIND_RESPONSE: u8 = 2;
/// Frame kind byte for a [`Message::Error`].
pub const KIND_ERROR: u8 = 3;
/// Frame kind byte for a [`Message::Hello`] (coordinator → shard
/// handshake probe).
pub const KIND_HELLO: u8 = 4;
/// Frame kind byte for a [`Message::ShardInfo`] (handshake reply).
pub const KIND_SHARD_INFO: u8 = 5;
/// Frame kind byte for a [`Message::ShardRequest`] (a batch to execute
/// as one shard of a distributed database).
pub const KIND_SHARD_REQUEST: u8 = 6;
/// Frame kind byte for a [`Message::ShardResponse`].
pub const KIND_SHARD_RESPONSE: u8 = 7;
/// Frame kind byte for a [`Message::Ingest`] (client → server: append
/// trajectories to a live, WAL-backed database).
pub const KIND_INGEST: u8 = 8;
/// Frame kind byte for a [`Message::IngestAck`] (server → client:
/// the writes are durable — WAL-synced — and queryable).
pub const KIND_INGEST_ACK: u8 = 9;

/// Everything that can go wrong speaking the wire format. Corruption is
/// always reported as a typed variant — decoding never panics.
#[derive(Debug)]
pub enum WireError {
    /// Underlying socket / stream error.
    Io(std::io::Error),
    /// The frame does not start with [`MAGIC`].
    BadMagic {
        /// The four bytes found instead.
        found: [u8; 4],
    },
    /// The frame's version is not [`VERSION`].
    UnsupportedVersion {
        /// Version found in the frame.
        found: u16,
        /// Version this build speaks.
        supported: u16,
    },
    /// The frame's kind byte names no known message kind.
    UnknownKind {
        /// The kind byte found.
        kind: u8,
    },
    /// The declared payload length exceeds [`MAX_PAYLOAD`].
    Oversized {
        /// Declared payload length.
        len: usize,
        /// The accepted maximum.
        max: usize,
    },
    /// The frame (or a field inside it) ends before its declared size.
    Truncated {
        /// Bytes needed to continue.
        needed: usize,
        /// Bytes actually available.
        got: usize,
    },
    /// The trailing checksum does not match the frame bytes.
    ChecksumMismatch {
        /// Checksum stored in the frame.
        stored: u64,
        /// Checksum computed over the received bytes.
        computed: u64,
    },
    /// The frame is structurally valid but its payload is not (bad
    /// enum tag, invalid trajectory, trailing bytes, …).
    Malformed {
        /// What was wrong.
        reason: &'static str,
    },
    /// The peer answered with an error frame instead of a response.
    Remote {
        /// Application error code.
        code: u16,
        /// Human-readable message from the peer.
        message: String,
    },
    /// A read, write, or connect deadline expired before the peer
    /// answered — the typed form of `WouldBlock`/`TimedOut` socket
    /// errors, so callers can distinguish a slow peer from a broken one.
    Timeout {
        /// The operation that timed out (`"connect"`, `"read"`,
        /// `"write"`).
        during: &'static str,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire i/o error: {e}"),
            WireError::BadMagic { found } => {
                write!(f, "bad wire magic {found:?} (expected {MAGIC:?})")
            }
            WireError::UnsupportedVersion { found, supported } => {
                write!(
                    f,
                    "unsupported wire version {found} (supported: {supported})"
                )
            }
            WireError::UnknownKind { kind } => write!(f, "unknown frame kind {kind}"),
            WireError::Oversized { len, max } => {
                write!(f, "declared payload of {len} bytes exceeds maximum {max}")
            }
            WireError::Truncated { needed, got } => {
                write!(f, "truncated frame: needed {needed} bytes, got {got}")
            }
            WireError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            WireError::Malformed { reason } => write!(f, "malformed payload: {reason}"),
            WireError::Remote { code, message } => {
                write!(f, "remote error {code}: {message}")
            }
            WireError::Timeout { during } => write!(f, "timed out during {during}"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

// `std::io::Error` is not `Clone`, but a coalescing coordinator must
// hand one round's failure to every request that rode it. The clone
// preserves the `ErrorKind` (what callers match on) and the message.
impl Clone for WireError {
    fn clone(&self) -> Self {
        match self {
            WireError::Io(e) => WireError::Io(std::io::Error::new(e.kind(), e.to_string())),
            WireError::BadMagic { found } => WireError::BadMagic { found: *found },
            WireError::UnsupportedVersion { found, supported } => WireError::UnsupportedVersion {
                found: *found,
                supported: *supported,
            },
            WireError::UnknownKind { kind } => WireError::UnknownKind { kind: *kind },
            WireError::Oversized { len, max } => WireError::Oversized {
                len: *len,
                max: *max,
            },
            WireError::Truncated { needed, got } => WireError::Truncated {
                needed: *needed,
                got: *got,
            },
            WireError::ChecksumMismatch { stored, computed } => WireError::ChecksumMismatch {
                stored: *stored,
                computed: *computed,
            },
            WireError::Malformed { reason } => WireError::Malformed { reason },
            WireError::Remote { code, message } => WireError::Remote {
                code: *code,
                message: message.clone(),
            },
            WireError::Timeout { during } => WireError::Timeout { during },
        }
    }
}

/// Version of the [`ShardInfo`] *payload* layout (independent of the
/// frame [`VERSION`]). Version 2 added the leading version field itself
/// plus the optional bounding cube; peers speaking a different payload
/// version are rejected with a typed [`WireError::Malformed`] at
/// handshake time — before any query flows.
pub const SHARD_INFO_VERSION: u16 = 2;

/// What a shard server reports about itself during the coordinator
/// handshake — enough for the coordinator to cross-check the placement
/// map before trusting the shard with queries, and (since payload
/// version 2) the bounding cube the coordinator routes with.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardInfo {
    /// Trajectories the shard serves.
    pub trajs: u64,
    /// Points the shard serves.
    pub points: u64,
    /// True when the shard carries a persisted kept bitmap (can answer
    /// `RangeKept` with `Some`).
    pub has_kept: bool,
    /// Smallest cube covering every point the shard serves, as decoded
    /// from its snapshot — what the coordinator's bound-pruned routing
    /// tests queries against. `None` when the shard serves no points.
    pub bounds: Option<Cube>,
}

/// One query's *shard-local* answer inside a [`Message::ShardResponse`]
/// — the raw per-shard material the coordinator merges exactly as
/// `ShardedQueryEngine` merges in-process shards. Ids are already
/// global when the shard serves a whole shard snapshot (its engine maps
/// local→global is the coordinator's job via the placement map — see
/// `traj_serve::coordinator`).
#[derive(Debug, Clone, PartialEq)]
pub enum ShardResult {
    /// Range/similarity hits, shard-local ids ascending.
    Ids(Vec<TrajId>),
    /// Kept-bitmap range hits; `None` when the shard has no bitmap.
    Kept(Option<Vec<TrajId>>),
    /// kNN candidates: finite `(distance, shard-local id)` pairs sorted
    /// ascending by `(distance, id)`, truncated to the query's `k`,
    /// `-0.0`-normalized — the shape `knn_candidates` produces.
    Candidates(Vec<(f64, TrajId)>),
}

/// What a live server reports back for one [`Message::Ingest`] frame,
/// sent only after the delta store's WAL has been synced — an ack means
/// the accepted trajectories survive a crash *and* are already visible
/// to queries on the same server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestAck {
    /// Trajectories admitted (at least one point survived the online
    /// simplifier and validation).
    pub accepted: u32,
    /// Trajectories rejected outright (no admissible point).
    pub rejected: u32,
    /// Global id assigned to the first accepted trajectory; the rest
    /// follow contiguously. `None` when nothing was accepted.
    pub first_id: Option<TrajId>,
    /// Total trajectories the database serves after this batch.
    pub total_trajs: u64,
    /// Total points the database serves after this batch.
    pub total_points: u64,
}

/// One framed message, either direction.
#[derive(Debug, Clone)]
pub enum Message {
    /// Client → server: a batch plan to execute.
    Request(QueryBatch),
    /// Server → client: the results, in submission order.
    Response(Vec<QueryResult>),
    /// Server → client: the request could not be served.
    Error {
        /// Application error code (see `docs/WIRE_FORMAT.md`).
        code: u16,
        /// Human-readable description.
        message: String,
    },
    /// Coordinator → shard: identify yourself (handshake probe).
    Hello,
    /// Shard → coordinator: handshake reply.
    ShardInfo(ShardInfo),
    /// Coordinator → shard: execute this batch as one shard of a
    /// distributed database, returning raw per-shard material instead
    /// of finished answers. The `id` is echoed back on the matching
    /// [`Message::ShardResponse`], so a pipelined connection can carry
    /// several rounds in flight and pair replies with requests.
    ShardRequest {
        /// Caller-chosen request id, echoed on the response.
        id: u64,
        /// The batch to execute.
        batch: QueryBatch,
    },
    /// Shard → coordinator: one [`ShardResult`] per query, in
    /// submission order, echoing the request's `id`.
    ShardResponse {
        /// The id of the [`Message::ShardRequest`] this answers.
        id: u64,
        /// One result per query, in submission order.
        results: Vec<ShardResult>,
    },
    /// Client → server: append these trajectories to a live database.
    /// Every trajectory must already be wire-valid (non-empty, finite,
    /// time-sorted) — trajectory decoding rejects the whole frame
    /// otherwise; the server's online admission may still reject
    /// individual trajectories (reported in the ack's `rejected`
    /// count).
    Ingest(Vec<Trajectory>),
    /// Server → client: the ingest batch is WAL-durable and queryable.
    IngestAck(IngestAck),
}

impl Message {
    /// The frame kind byte this message serializes under.
    #[must_use]
    pub fn kind(&self) -> u8 {
        match self {
            Message::Request(_) => KIND_REQUEST,
            Message::Response(_) => KIND_RESPONSE,
            Message::Error { .. } => KIND_ERROR,
            Message::Hello => KIND_HELLO,
            Message::ShardInfo(_) => KIND_SHARD_INFO,
            Message::ShardRequest { .. } => KIND_SHARD_REQUEST,
            Message::ShardResponse { .. } => KIND_SHARD_RESPONSE,
            Message::Ingest(_) => KIND_INGEST,
            Message::IngestAck(_) => KIND_INGEST_ACK,
        }
    }
}

// ---------------------------------------------------------------------
// Payload reader: bounds-checked cursor over the (checksum-verified)
// payload bytes.
// ---------------------------------------------------------------------

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn need(&self, n: usize) -> Result<(), WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                needed: n,
                got: self.remaining(),
            });
        }
        Ok(())
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        self.need(1)?;
        let v = self.buf[self.pos];
        self.pos += 1;
        Ok(v)
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        self.need(2)?;
        let v = u16::from_le_bytes([self.buf[self.pos], self.buf[self.pos + 1]]);
        self.pos += 2;
        Ok(v)
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        self.need(4)?;
        let v = get_u32(self.buf, self.pos);
        self.pos += 4;
        Ok(v)
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        self.need(8)?;
        let v = get_u64(self.buf, self.pos);
        self.pos += 8;
        Ok(v)
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// A `u32` element count whose elements occupy at least
    /// `elem_size` bytes each — validated against the remaining
    /// payload so a corrupt count can never size an allocation.
    fn count(&mut self, elem_size: usize) -> Result<usize, WireError> {
        let n = self.u32()? as usize;
        let needed = n.saturating_mul(elem_size);
        if self.remaining() < needed {
            return Err(WireError::Truncated {
                needed,
                got: self.remaining(),
            });
        }
        Ok(n)
    }

    fn finish(self) -> Result<(), WireError> {
        if self.remaining() != 0 {
            return Err(WireError::Malformed {
                reason: "trailing bytes after payload",
            });
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Query / result payload encoding.
// ---------------------------------------------------------------------

const TAG_RANGE: u8 = 0;
const TAG_KNN: u8 = 1;
const TAG_SIMILARITY: u8 = 2;
const TAG_RANGE_KEPT: u8 = 3;

const MEASURE_EDR: u8 = 0;
const MEASURE_T2VEC: u8 = 1;

fn put_f64_vec(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_u32_vec(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64_vec(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn encode_cube(out: &mut Vec<u8>, c: &Cube) {
    put_f64_vec(out, c.x_min);
    put_f64_vec(out, c.x_max);
    put_f64_vec(out, c.y_min);
    put_f64_vec(out, c.y_max);
    put_f64_vec(out, c.t_min);
    put_f64_vec(out, c.t_max);
}

fn decode_cube(r: &mut Reader<'_>) -> Result<Cube, WireError> {
    let x_min = r.f64()?;
    let x_max = r.f64()?;
    let y_min = r.f64()?;
    let y_max = r.f64()?;
    let t_min = r.f64()?;
    let t_max = r.f64()?;
    // NaN fails every ordering, so this also rejects NaN bounds.
    if !(x_min <= x_max && y_min <= y_max && t_min <= t_max) {
        return Err(WireError::Malformed {
            reason: "cube bounds out of order",
        });
    }
    Ok(Cube {
        x_min,
        x_max,
        y_min,
        y_max,
        t_min,
        t_max,
    })
}

fn encode_trajectory(out: &mut Vec<u8>, t: &Trajectory) {
    let pts = t.points();
    put_u32_vec(out, pts.len() as u32);
    for p in pts {
        put_f64_vec(out, p.x);
        put_f64_vec(out, p.y);
        put_f64_vec(out, p.t);
    }
}

fn decode_trajectory(r: &mut Reader<'_>) -> Result<Trajectory, WireError> {
    let n = r.count(24)?;
    let mut pts = Vec::with_capacity(n);
    for _ in 0..n {
        let x = r.f64()?;
        let y = r.f64()?;
        let t = r.f64()?;
        pts.push(Point { x, y, t });
    }
    Trajectory::new(pts).ok_or(WireError::Malformed {
        reason: "invalid trajectory (empty, non-finite, or time-unsorted)",
    })
}

/// Appends one [`Query`]'s wire encoding to `out`.
pub fn encode_query(out: &mut Vec<u8>, q: &Query) {
    match q {
        Query::Range(c) => {
            out.push(TAG_RANGE);
            encode_cube(out, c);
        }
        Query::Knn(k) => {
            out.push(TAG_KNN);
            encode_trajectory(out, &k.query);
            put_f64_vec(out, k.ts);
            put_f64_vec(out, k.te);
            put_u64_vec(out, k.k as u64);
            match &k.measure {
                Dissimilarity::Edr { eps } => {
                    out.push(MEASURE_EDR);
                    put_f64_vec(out, *eps);
                }
                Dissimilarity::T2vec(e) => {
                    out.push(MEASURE_T2VEC);
                    put_f64_vec(out, e.cell_size);
                    put_u64_vec(out, e.dim as u64);
                }
            }
        }
        Query::Similarity(s) => {
            out.push(TAG_SIMILARITY);
            encode_trajectory(out, &s.query);
            put_f64_vec(out, s.ts);
            put_f64_vec(out, s.te);
            put_f64_vec(out, s.delta);
            put_f64_vec(out, s.step);
        }
        Query::RangeKept(c) => {
            out.push(TAG_RANGE_KEPT);
            encode_cube(out, c);
        }
    }
}

fn decode_query(r: &mut Reader<'_>) -> Result<Query, WireError> {
    match r.u8()? {
        TAG_RANGE => Ok(Query::Range(decode_cube(r)?)),
        TAG_KNN => {
            let query = decode_trajectory(r)?;
            let ts = r.f64()?;
            let te = r.f64()?;
            let k = usize::try_from(r.u64()?).map_err(|_| WireError::Malformed {
                reason: "knn k exceeds usize",
            })?;
            let measure = match r.u8()? {
                MEASURE_EDR => Dissimilarity::Edr { eps: r.f64()? },
                MEASURE_T2VEC => {
                    let cell_size = r.f64()?;
                    let dim = usize::try_from(r.u64()?)
                        .ok()
                        .filter(|&d| d <= MAX_T2VEC_DIM);
                    let dim = dim.ok_or(WireError::Malformed {
                        reason: "t2vec dimension out of range",
                    })?;
                    Dissimilarity::T2vec(T2vecEmbedder { cell_size, dim })
                }
                _ => {
                    return Err(WireError::Malformed {
                        reason: "unknown dissimilarity tag",
                    })
                }
            };
            Ok(Query::Knn(KnnQuery {
                query,
                ts,
                te,
                k,
                measure,
            }))
        }
        TAG_SIMILARITY => {
            let query = decode_trajectory(r)?;
            let ts = r.f64()?;
            let te = r.f64()?;
            let delta = r.f64()?;
            let step = r.f64()?;
            Ok(Query::Similarity(SimilarityQuery {
                query,
                ts,
                te,
                delta,
                step,
            }))
        }
        TAG_RANGE_KEPT => Ok(Query::RangeKept(decode_cube(r)?)),
        _ => Err(WireError::Malformed {
            reason: "unknown query tag",
        }),
    }
}

fn encode_ids(out: &mut Vec<u8>, ids: &[TrajId]) {
    put_u32_vec(out, ids.len() as u32);
    for &id in ids {
        put_u64_vec(out, id as u64);
    }
}

fn decode_ids(r: &mut Reader<'_>) -> Result<Vec<TrajId>, WireError> {
    let n = r.count(8)?;
    let mut ids = Vec::with_capacity(n);
    for _ in 0..n {
        let id = usize::try_from(r.u64()?).map_err(|_| WireError::Malformed {
            reason: "trajectory id exceeds usize",
        })?;
        ids.push(id);
    }
    Ok(ids)
}

/// Appends one [`QueryResult`]'s wire encoding to `out`.
pub fn encode_result(out: &mut Vec<u8>, r: &QueryResult) {
    match r {
        QueryResult::Range(ids) => {
            out.push(TAG_RANGE);
            encode_ids(out, ids);
        }
        QueryResult::Knn(ids) => {
            out.push(TAG_KNN);
            encode_ids(out, ids);
        }
        QueryResult::Similarity(ids) => {
            out.push(TAG_SIMILARITY);
            encode_ids(out, ids);
        }
        QueryResult::RangeKept(ids) => {
            out.push(TAG_RANGE_KEPT);
            match ids {
                Some(ids) => {
                    out.push(1);
                    encode_ids(out, ids);
                }
                None => out.push(0),
            }
        }
    }
}

fn decode_result(r: &mut Reader<'_>) -> Result<QueryResult, WireError> {
    match r.u8()? {
        TAG_RANGE => Ok(QueryResult::Range(decode_ids(r)?)),
        TAG_KNN => Ok(QueryResult::Knn(decode_ids(r)?)),
        TAG_SIMILARITY => Ok(QueryResult::Similarity(decode_ids(r)?)),
        TAG_RANGE_KEPT => match r.u8()? {
            0 => Ok(QueryResult::RangeKept(None)),
            1 => Ok(QueryResult::RangeKept(Some(decode_ids(r)?))),
            _ => Err(WireError::Malformed {
                reason: "range-kept presence byte not 0/1",
            }),
        },
        _ => Err(WireError::Malformed {
            reason: "unknown result tag",
        }),
    }
}

const SHARD_TAG_IDS: u8 = 0;
const SHARD_TAG_KEPT: u8 = 1;
const SHARD_TAG_CANDIDATES: u8 = 2;

/// Appends one [`ShardResult`]'s wire encoding to `out`.
pub fn encode_shard_result(out: &mut Vec<u8>, r: &ShardResult) {
    match r {
        ShardResult::Ids(ids) => {
            out.push(SHARD_TAG_IDS);
            encode_ids(out, ids);
        }
        ShardResult::Kept(ids) => {
            out.push(SHARD_TAG_KEPT);
            match ids {
                Some(ids) => {
                    out.push(1);
                    encode_ids(out, ids);
                }
                None => out.push(0),
            }
        }
        ShardResult::Candidates(cands) => {
            out.push(SHARD_TAG_CANDIDATES);
            put_u32_vec(out, cands.len() as u32);
            for &(d, id) in cands {
                put_f64_vec(out, d);
                put_u64_vec(out, id as u64);
            }
        }
    }
}

fn decode_shard_result(r: &mut Reader<'_>) -> Result<ShardResult, WireError> {
    match r.u8()? {
        SHARD_TAG_IDS => Ok(ShardResult::Ids(decode_ids(r)?)),
        SHARD_TAG_KEPT => match r.u8()? {
            0 => Ok(ShardResult::Kept(None)),
            1 => Ok(ShardResult::Kept(Some(decode_ids(r)?))),
            _ => Err(WireError::Malformed {
                reason: "shard kept presence byte not 0/1",
            }),
        },
        SHARD_TAG_CANDIDATES => {
            let n = r.count(16)?;
            let mut cands: Vec<(f64, TrajId)> = Vec::with_capacity(n);
            for _ in 0..n {
                let d = r.f64()?;
                // The coordinator's k-heap merge assumes finite,
                // `-0.0`-normalized distances in sorted streams;
                // anything else would silently corrupt the global merge
                // order, so reject it here as malformed.
                if !d.is_finite() {
                    return Err(WireError::Malformed {
                        reason: "non-finite knn candidate distance",
                    });
                }
                if d == 0.0 && d.is_sign_negative() {
                    return Err(WireError::Malformed {
                        reason: "unnormalized -0.0 knn candidate distance",
                    });
                }
                let id = usize::try_from(r.u64()?).map_err(|_| WireError::Malformed {
                    reason: "trajectory id exceeds usize",
                })?;
                if let Some(&(pd, pid)) = cands.last() {
                    if d < pd || (d == pd && id <= pid) {
                        return Err(WireError::Malformed {
                            reason: "knn candidates out of (distance, id) order",
                        });
                    }
                }
                cands.push((d, id));
            }
            Ok(ShardResult::Candidates(cands))
        }
        _ => Err(WireError::Malformed {
            reason: "unknown shard result tag",
        }),
    }
}

// ---------------------------------------------------------------------
// Whole-message framing.
// ---------------------------------------------------------------------

fn encode_payload(msg: &Message) -> Vec<u8> {
    let mut out = Vec::new();
    match msg {
        Message::Request(batch) => {
            put_u32_vec(&mut out, batch.len() as u32);
            for q in batch.queries() {
                encode_query(&mut out, q);
            }
        }
        Message::Response(results) => {
            put_u32_vec(&mut out, results.len() as u32);
            for r in results {
                encode_result(&mut out, r);
            }
        }
        Message::Error { code, message } => {
            out.extend_from_slice(&code.to_le_bytes());
            put_u32_vec(&mut out, message.len() as u32);
            out.extend_from_slice(message.as_bytes());
        }
        Message::Hello => {}
        Message::ShardInfo(info) => {
            out.extend_from_slice(&SHARD_INFO_VERSION.to_le_bytes());
            put_u64_vec(&mut out, info.trajs);
            put_u64_vec(&mut out, info.points);
            out.push(u8::from(info.has_kept));
            match &info.bounds {
                Some(b) => {
                    out.push(1);
                    encode_cube(&mut out, b);
                }
                None => out.push(0),
            }
        }
        Message::ShardRequest { id, batch } => {
            put_u64_vec(&mut out, *id);
            put_u32_vec(&mut out, batch.len() as u32);
            for q in batch.queries() {
                encode_query(&mut out, q);
            }
        }
        Message::ShardResponse { id, results } => {
            put_u64_vec(&mut out, *id);
            put_u32_vec(&mut out, results.len() as u32);
            for r in results {
                encode_shard_result(&mut out, r);
            }
        }
        Message::Ingest(trajs) => {
            put_u32_vec(&mut out, trajs.len() as u32);
            for t in trajs {
                encode_trajectory(&mut out, t);
            }
        }
        Message::IngestAck(ack) => {
            put_u32_vec(&mut out, ack.accepted);
            put_u32_vec(&mut out, ack.rejected);
            // `u64::MAX` is the "nothing accepted" sentinel: a real
            // first id can never reach it (ids count trajectories).
            put_u64_vec(&mut out, ack.first_id.map_or(u64::MAX, |id| id as u64));
            put_u64_vec(&mut out, ack.total_trajs);
            put_u64_vec(&mut out, ack.total_points);
        }
    }
    out
}

fn decode_payload(kind: u8, payload: &[u8]) -> Result<Message, WireError> {
    let mut r = Reader::new(payload);
    let msg = match kind {
        KIND_REQUEST => {
            // A query is at least a tag byte.
            let n = r.count(1)?;
            let mut queries = Vec::with_capacity(n);
            for _ in 0..n {
                queries.push(decode_query(&mut r)?);
            }
            Message::Request(QueryBatch::from_queries(queries))
        }
        KIND_RESPONSE => {
            let n = r.count(1)?;
            let mut results = Vec::with_capacity(n);
            for _ in 0..n {
                results.push(decode_result(&mut r)?);
            }
            Message::Response(results)
        }
        KIND_ERROR => {
            let code = r.u16()?;
            let len = r.count(1)?;
            r.need(len)?;
            let bytes = &r.buf[r.pos..r.pos + len];
            r.pos += len;
            let message = std::str::from_utf8(bytes)
                .map_err(|_| WireError::Malformed {
                    reason: "error message is not valid UTF-8",
                })?
                .to_owned();
            Message::Error { code, message }
        }
        KIND_HELLO => Message::Hello,
        KIND_SHARD_INFO => {
            // The payload carries its own version so the handshake —
            // which runs before any query — is where a coordinator and
            // a shard discover they speak different layouts, as a typed
            // error instead of silent misdecoding.
            let version = r.u16()?;
            if version != SHARD_INFO_VERSION {
                return Err(WireError::Malformed {
                    reason: "unsupported shard-info payload version",
                });
            }
            let trajs = r.u64()?;
            let points = r.u64()?;
            let has_kept = match r.u8()? {
                0 => false,
                1 => true,
                _ => {
                    return Err(WireError::Malformed {
                        reason: "shard-info kept byte not 0/1",
                    })
                }
            };
            let bounds = match r.u8()? {
                0 => None,
                1 => Some(decode_cube(&mut r)?),
                _ => {
                    return Err(WireError::Malformed {
                        reason: "shard-info bounds presence byte not 0/1",
                    })
                }
            };
            Message::ShardInfo(ShardInfo {
                trajs,
                points,
                has_kept,
                bounds,
            })
        }
        KIND_SHARD_REQUEST => {
            let id = r.u64()?;
            let n = r.count(1)?;
            let mut queries = Vec::with_capacity(n);
            for _ in 0..n {
                queries.push(decode_query(&mut r)?);
            }
            Message::ShardRequest {
                id,
                batch: QueryBatch::from_queries(queries),
            }
        }
        KIND_SHARD_RESPONSE => {
            let id = r.u64()?;
            let n = r.count(1)?;
            let mut results = Vec::with_capacity(n);
            for _ in 0..n {
                results.push(decode_shard_result(&mut r)?);
            }
            Message::ShardResponse { id, results }
        }
        KIND_INGEST => {
            // A trajectory is at least its 4-byte point count.
            let n = r.count(4)?;
            let mut trajs = Vec::with_capacity(n);
            for _ in 0..n {
                trajs.push(decode_trajectory(&mut r)?);
            }
            Message::Ingest(trajs)
        }
        KIND_INGEST_ACK => {
            let accepted = r.u32()?;
            let rejected = r.u32()?;
            let first_raw = r.u64()?;
            let first_id = if first_raw == u64::MAX {
                None
            } else {
                let id = usize::try_from(first_raw).map_err(|_| WireError::Malformed {
                    reason: "ingest-ack first id exceeds the address space",
                })?;
                Some(id)
            };
            if first_id.is_some() != (accepted > 0) {
                return Err(WireError::Malformed {
                    reason: "ingest-ack first id disagrees with accepted count",
                });
            }
            let total_trajs = r.u64()?;
            let total_points = r.u64()?;
            Message::IngestAck(IngestAck {
                accepted,
                rejected,
                first_id,
                total_trajs,
                total_points,
            })
        }
        kind => return Err(WireError::UnknownKind { kind }),
    };
    r.finish()?;
    Ok(msg)
}

/// Encodes `msg` into one complete frame (header + payload + checksum).
#[must_use]
pub fn encode_message(msg: &Message) -> Vec<u8> {
    let payload = encode_payload(msg);
    let mut frame = vec![0u8; HEADER_LEN];
    frame[0..4].copy_from_slice(&MAGIC);
    frame[4..6].copy_from_slice(&VERSION.to_le_bytes());
    frame[6] = msg.kind();
    frame[7] = 0; // reserved
    put_u32(&mut frame, 8, payload.len() as u32);
    frame.extend_from_slice(&payload);
    let checksum = fnv1a64(&frame);
    let mut tail = [0u8; CHECKSUM_LEN];
    put_u64(&mut tail, 0, checksum);
    frame.extend_from_slice(&tail);
    frame
}

/// Validates the 12-byte header, returning `(kind, payload_len)`.
fn decode_header(header: &[u8; HEADER_LEN]) -> Result<(u8, usize), WireError> {
    if header[0..4] != MAGIC {
        return Err(WireError::BadMagic {
            found: [header[0], header[1], header[2], header[3]],
        });
    }
    let version = u16::from_le_bytes([header[4], header[5]]);
    if version != VERSION {
        return Err(WireError::UnsupportedVersion {
            found: version,
            supported: VERSION,
        });
    }
    let kind = header[6];
    if !(KIND_REQUEST..=KIND_INGEST_ACK).contains(&kind) {
        return Err(WireError::UnknownKind { kind });
    }
    if header[7] != 0 {
        return Err(WireError::Malformed {
            reason: "reserved header byte is not zero",
        });
    }
    let len = get_u32(header, 8) as usize;
    if len > MAX_PAYLOAD {
        return Err(WireError::Oversized {
            len,
            max: MAX_PAYLOAD,
        });
    }
    Ok((kind, len))
}

/// Decodes exactly one frame from `buf`. The buffer must hold the whole
/// frame and nothing else — trailing bytes are [`WireError::Malformed`].
pub fn decode_message(buf: &[u8]) -> Result<Message, WireError> {
    if buf.len() < HEADER_LEN {
        return Err(WireError::Truncated {
            needed: HEADER_LEN,
            got: buf.len(),
        });
    }
    let header: [u8; HEADER_LEN] = buf[..HEADER_LEN].try_into().expect("length checked");
    let (kind, len) = decode_header(&header)?;
    let total = HEADER_LEN + len + CHECKSUM_LEN;
    if buf.len() < total {
        return Err(WireError::Truncated {
            needed: total,
            got: buf.len(),
        });
    }
    if buf.len() > total {
        return Err(WireError::Malformed {
            reason: "trailing bytes after frame",
        });
    }
    let stored = get_u64(buf, HEADER_LEN + len);
    let computed = fnv1a64(&buf[..HEADER_LEN + len]);
    if stored != computed {
        return Err(WireError::ChecksumMismatch { stored, computed });
    }
    decode_payload(kind, &buf[HEADER_LEN..HEADER_LEN + len])
}

/// Writes one frame to `w` (one `write_all` call; pair with
/// `TCP_NODELAY` for low latency).
pub fn write_message(w: &mut impl Write, msg: &Message) -> Result<(), WireError> {
    let frame = encode_message(msg);
    w.write_all(&frame)?;
    Ok(())
}

/// Reads one frame from `r`. Returns `Ok(None)` on a clean end of
/// stream at a frame boundary; end-of-stream inside a frame is an
/// [`WireError::Io`] with `UnexpectedEof`. Header fields are validated
/// before the payload is read, so a bad magic or an oversized length
/// prefix never commits the reader to a large read.
pub fn read_message(r: &mut impl Read) -> Result<Option<Message>, WireError> {
    let mut header = [0u8; HEADER_LEN];
    // First byte separately: a clean close before any byte is not an
    // error, it is the end of the conversation.
    match r.read(&mut header[..1]) {
        Ok(0) => return Ok(None),
        Ok(_) => {}
        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {
            return read_message(r);
        }
        Err(e) => return Err(WireError::Io(e)),
    }
    r.read_exact(&mut header[1..])?;
    let (kind, len) = decode_header(&header)?;
    let mut rest = vec![0u8; len + CHECKSUM_LEN];
    r.read_exact(&mut rest)?;
    let stored = get_u64(&rest, len);
    let mut hasher_input = Vec::with_capacity(HEADER_LEN + len);
    hasher_input.extend_from_slice(&header);
    hasher_input.extend_from_slice(&rest[..len]);
    let computed = fnv1a64(&hasher_input);
    if stored != computed {
        return Err(WireError::ChecksumMismatch { stored, computed });
    }
    decode_payload(kind, &rest[..len]).map(Some)
}
