//! Plain-text table rendering for experiment output.
//!
//! The experiment binaries print the same rows/series the paper's figures
//! plot; a small column-aligned renderer keeps that output readable and
//! diffable.

/// A simple table: a header row plus data rows of strings.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a data row; missing cells render empty, extras are kept.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows exist.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Access to the raw rows (tests).
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let cols = self
            .header
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        let measure = |row: &[String], widths: &mut Vec<usize>| {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        };
        measure(&self.header, &mut widths);
        for r in &self.rows {
            measure(r, &mut widths);
        }
        let fmt_row = |row: &[String]| -> String {
            let mut s = String::new();
            for (i, width) in widths.iter().enumerate().take(cols) {
                let cell = row.get(i).map(String::as_str).unwrap_or("");
                if i > 0 {
                    s.push_str("  ");
                }
                s.push_str(cell);
                for _ in cell.chars().count()..*width {
                    s.push(' ');
                }
            }
            s.trim_end().to_string()
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r));
            out.push('\n');
        }
        out
    }

    /// Renders as CSV (for plotting scripts).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        out.push_str(
            &self
                .header
                .iter()
                .map(|c| esc(c))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for r in &self.rows {
            out.push_str(&r.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a mean ± std pair the way the paper's tables do.
pub fn mean_std(values: &[f64]) -> String {
    format!("{:.3} ± {:.3}", mean(values), std_dev(values))
}

/// Arithmetic mean (0 for empty input).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Sample standard deviation (0 for < 2 samples).
pub fn std_dev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    (values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (values.len() - 1) as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["method", "F1"]);
        t.row(vec!["Top-Down(E,PED)".into(), "0.71".into()]);
        t.row(vec!["RL4QDTS".into(), "0.83".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("method"));
        assert!(lines[2].contains("0.71"));
        // Columns align: "F1" column starts at the same offset everywhere.
        let off = lines[0].find("F1").unwrap();
        assert_eq!(&lines[3][off..off + 4], "0.83");
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new(&["a,b", "c"]);
        t.row(vec!["x\"y".into(), "z".into()]);
        let csv = t.to_csv();
        assert!(csv.starts_with("\"a,b\",c\n"));
        assert!(csv.contains("\"x\"\"y\",z"));
    }

    #[test]
    fn stats_helpers() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(std_dev(&[1.0]), 0.0);
        assert!((std_dev(&[1.0, 2.0, 3.0]) - 1.0).abs() < 1e-12);
        assert_eq!(mean_std(&[0.5, 0.7]), "0.600 ± 0.141");
    }
}
