//! The `snapshot` / `serve` tasks: CSV → snapshot once, then query
//! straight from the mapping.
//!
//! This is the operational pipeline the snapshot format exists for. The
//! **snapshot** task pays the expensive ingestion exactly once — parse
//! CSV (or generate a synthetic database), optionally simplify to a
//! budget, write one `.snap` file. The **serve** task then stands up a
//! query engine from that file: `MappedStore::open` copies and decodes
//! nothing (its one full-file pass is the checksum verification),
//! the octree build walks the mapped columns directly, and range
//! workloads execute with zero deserialization — including against the
//! simplified database via the file's kept bitmap.
//!
//! Both tasks are exposed as library functions (smoke-tested) and
//! through the `snapshot_serve` binary:
//!
//! ```text
//! cargo run -p qdts-eval --release --bin snapshot_serve -- \
//!     snapshot --out /tmp/tdrive.snap --scale small --ratio 0.25
//! cargo run -p qdts-eval --release --bin snapshot_serve -- \
//!     serve --snap /tmp/tdrive.snap --queries 100
//! ```

use std::path::Path;
use std::time::Instant;

use traj_query::{
    range_workload_store, EngineConfig, QueryDistribution, QueryEngine, RangeWorkloadSpec,
    ShardedQueryEngine,
};
use traj_simp::{Simplifier, Uniform};
use trajectory::gen::{generate, DatasetSpec, Scale};
use trajectory::io::read_csv_store;
use trajectory::shard::{partition, PartitionStrategy, Shard, ShardSet};
use trajectory::snapshot::{write_snapshot_with, MappedStore};
use trajectory::{AsColumns, PointStore};

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Where the `snapshot` task's database comes from.
#[derive(Debug, Clone)]
pub enum SnapshotSource {
    /// Parse a `traj_id,x,y,t` CSV file.
    Csv(std::path::PathBuf),
    /// Generate a T-Drive-shaped synthetic database at `scale`.
    Synthetic(Scale),
}

/// What the `snapshot` task produced.
#[derive(Debug, Clone)]
pub struct SnapshotReport {
    /// Trajectories in the store.
    pub trajectories: usize,
    /// Total points in the store.
    pub points: usize,
    /// Points the kept bitmap selects, when a simplification was applied.
    pub kept_points: Option<usize>,
    /// Size of the written snapshot file in bytes.
    pub file_bytes: u64,
    /// Seconds spent acquiring the store (CSV parse or generation).
    pub ingest_seconds: f64,
    /// Seconds spent simplifying (0 when `ratio` is `None`).
    pub simplify_seconds: f64,
    /// Seconds spent writing the snapshot.
    pub write_seconds: f64,
}

/// The `snapshot` task: acquire a database, optionally simplify it to
/// `ratio · N` points (uniform baseline — the cheapest simplifier; swap
/// in RL4QDTS offline), and persist everything as one snapshot file.
pub fn snapshot_task(
    source: &SnapshotSource,
    ratio: Option<f64>,
    out: &Path,
    seed: u64,
) -> Result<SnapshotReport, Box<dyn std::error::Error>> {
    let t0 = Instant::now();
    let store = acquire_store(source, seed)?;
    let ingest_seconds = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let (kept, kept_points, simplify_seconds) = match ratio {
        Some(r) => {
            let budget = ((store.total_points() as f64 * r) as usize).max(1);
            let simp = Uniform.simplify_store(&store, budget);
            let kept_points = simp.total_points();
            (
                Some(simp.to_bitmap(&store)),
                Some(kept_points),
                t1.elapsed().as_secs_f64(),
            )
        }
        None => (None, None, 0.0),
    };

    let t2 = Instant::now();
    write_snapshot_with(&store, kept.as_ref(), out)?;
    let write_seconds = t2.elapsed().as_secs_f64();

    Ok(SnapshotReport {
        trajectories: store.len(),
        points: store.total_points(),
        kept_points,
        file_bytes: std::fs::metadata(out)?.len(),
        ingest_seconds,
        simplify_seconds,
        write_seconds,
    })
}

/// What the `serve` task measured.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Trajectories served.
    pub trajectories: usize,
    /// Points served.
    pub points: usize,
    /// Seconds from path to validated, query-ready mapping.
    pub open_seconds: f64,
    /// Seconds spent building the octree over the mapped columns.
    pub index_seconds: f64,
    /// Number of range queries executed.
    pub queries: usize,
    /// Seconds for the whole query batch against the full database.
    pub full_batch_seconds: f64,
    /// Seconds for the batch against the kept bitmap (`None` when the
    /// snapshot carries no simplification).
    pub simplified_batch_seconds: Option<f64>,
    /// Total result-set size over the full-database batch (a cheap
    /// fingerprint for cross-checking serving paths).
    pub full_result_ids: usize,
}

/// Acquires the source database (CSV parse or synthetic generation) —
/// shared between the single-snapshot and sharded snapshot tasks.
fn acquire_store(
    source: &SnapshotSource,
    seed: u64,
) -> Result<PointStore, Box<dyn std::error::Error>> {
    Ok(match source {
        SnapshotSource::Csv(path) => read_csv_store(std::fs::File::open(path)?)?,
        SnapshotSource::Synthetic(scale) => {
            generate(&DatasetSpec::tdrive(*scale).with_trajectories(1000), seed).to_store()
        }
    })
}

/// The `serve` task: open a snapshot, build an engine **over the
/// mapping**, and execute a data-distribution range workload — against
/// the full columns, and additionally against the kept bitmap when the
/// file carries one.
pub fn serve_task(
    snap: &Path,
    queries: usize,
    seed: u64,
) -> Result<ServeReport, Box<dyn std::error::Error>> {
    let t0 = Instant::now();
    let mapped = MappedStore::open(snap)?;
    let open_seconds = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let engine = QueryEngine::over_mapped(&mapped, EngineConfig::octree());
    let index_seconds = t1.elapsed().as_secs_f64();

    let spec = RangeWorkloadSpec::paper_default(queries, QueryDistribution::Data);
    let mut rng = StdRng::seed_from_u64(seed);
    let workload = range_workload_store(&mapped, &spec, &mut rng);

    let t2 = Instant::now();
    let full = engine.range_batch(&workload);
    let full_batch_seconds = t2.elapsed().as_secs_f64();
    let full_result_ids = full.iter().map(Vec::len).sum();

    let simplified_batch_seconds = mapped.kept_bitmap().map(|bitmap| {
        let t3 = Instant::now();
        for q in &workload {
            std::hint::black_box(engine.range_kept(&bitmap, q));
        }
        t3.elapsed().as_secs_f64()
    });

    Ok(ServeReport {
        trajectories: mapped.offsets().len() - 1,
        points: AsColumns::total_points(&mapped),
        open_seconds,
        index_seconds,
        queries: workload.len(),
        full_batch_seconds,
        simplified_batch_seconds,
        full_result_ids,
    })
}

// ---------------------------------------------------------------------
// Sharded snapshot / serve.
// ---------------------------------------------------------------------

/// What the sharded `snapshot` task produced.
#[derive(Debug, Clone)]
pub struct ShardSnapshotReport {
    /// Number of shards written.
    pub shards: usize,
    /// Trajectories across all shards.
    pub trajectories: usize,
    /// Points across all shards.
    pub points: usize,
    /// Kept points across all shards, when a simplification was applied.
    pub kept_points: Option<usize>,
    /// Total bytes across all shard snapshot files (manifest excluded).
    pub file_bytes: u64,
    /// Seconds spent acquiring the store.
    pub ingest_seconds: f64,
    /// Seconds spent partitioning.
    pub partition_seconds: f64,
    /// Seconds spent simplifying all shards (0 when `ratio` is `None`).
    pub simplify_seconds: f64,
    /// Seconds spent writing snapshots + manifest.
    pub write_seconds: f64,
}

/// The sharded `snapshot` task: acquire a database, partition it with
/// `strategy`, optionally simplify every shard to its proportional slice
/// of `ratio · N` points, and persist the whole set as one snapshot file
/// per shard plus the manifest.
pub fn shard_snapshot_task(
    source: &SnapshotSource,
    strategy: &PartitionStrategy,
    ratio: Option<f64>,
    out_dir: &Path,
    seed: u64,
) -> Result<ShardSnapshotReport, Box<dyn std::error::Error>> {
    let t0 = Instant::now();
    let store = acquire_store(source, seed)?;
    let ingest_seconds = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let shards: Vec<Shard> = partition(&store, strategy);
    let partition_seconds = t1.elapsed().as_secs_f64();

    let (set, kept_points, simplify_seconds, write_seconds) = match ratio {
        Some(r) => {
            let budget = ((store.total_points() as f64 * r) as usize).max(1);
            let t2 = Instant::now();
            let simps = traj_simp::simplify_shards(&Uniform, &shards, budget);
            let simplify_seconds = t2.elapsed().as_secs_f64();
            let kept: usize = simps.iter().map(|s| s.total_points()).sum();
            let t3 = Instant::now();
            let set = traj_simp::write_simplified_shard_set(out_dir, &shards, &simps)?;
            (
                set,
                Some(kept),
                simplify_seconds,
                t3.elapsed().as_secs_f64(),
            )
        }
        None => {
            let t3 = Instant::now();
            let set = ShardSet::write(out_dir, &shards)?;
            (set, None, 0.0, t3.elapsed().as_secs_f64())
        }
    };

    let mut file_bytes = 0;
    for entry in set.entries() {
        file_bytes += std::fs::metadata(out_dir.join(&entry.file))?.len();
    }
    Ok(ShardSnapshotReport {
        shards: shards.len(),
        trajectories: store.len(),
        points: store.total_points(),
        kept_points,
        file_bytes,
        ingest_seconds,
        partition_seconds,
        simplify_seconds,
        write_seconds,
    })
}

/// What the sharded `serve` task measured.
#[derive(Debug, Clone)]
pub struct ShardServeReport {
    /// Shards served.
    pub shards: usize,
    /// Trajectories served.
    pub trajectories: usize,
    /// Points served.
    pub points: usize,
    /// Seconds from directory to validated, query-ready mappings.
    pub open_seconds: f64,
    /// Seconds for the parallel per-shard index builds.
    pub index_seconds: f64,
    /// Number of range queries executed.
    pub queries: usize,
    /// Seconds for the whole query batch against the full database.
    pub full_batch_seconds: f64,
    /// Seconds for the batch against the per-shard kept bitmaps (`None`
    /// when the shards carry no simplification).
    pub simplified_batch_seconds: Option<f64>,
    /// Total result-set size over the full-database batch.
    pub full_result_ids: usize,
}

/// The sharded `serve` task: load and validate the manifest, mmap every
/// shard, build the fan-out engine (per-shard indexes in parallel over
/// the mapped columns), and execute a data-distribution range workload —
/// against the full database, and additionally against the per-shard
/// kept bitmaps when the set was written simplified.
pub fn shard_serve_task(
    dir: &Path,
    queries: usize,
    seed: u64,
) -> Result<ShardServeReport, Box<dyn std::error::Error>> {
    let t0 = Instant::now();
    let set = ShardSet::load(dir)?;
    let mapped = set.open_mapped()?;
    let open_seconds = t0.elapsed().as_secs_f64();

    // Data-distribution workload over the union: each shard contributes
    // queries proportional to its share of the points, anchored on its
    // own mapped columns.
    let total_points: usize = mapped
        .iter()
        .map(|s| AsColumns::total_points(&s.store))
        .sum();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut workload = Vec::with_capacity(queries);
    for (i, shard) in mapped.iter().enumerate() {
        let share = if total_points == 0 {
            0
        } else if i + 1 == mapped.len() {
            queries - workload.len()
        } else {
            queries * AsColumns::total_points(&shard.store) / total_points
        };
        let spec = RangeWorkloadSpec::paper_default(share, QueryDistribution::Data);
        workload.extend(range_workload_store(&shard.store, &spec, &mut rng));
    }

    let t1 = Instant::now();
    let engine = ShardedQueryEngine::from_mapped_shards(mapped, EngineConfig::octree());
    let index_seconds = t1.elapsed().as_secs_f64();

    let t2 = Instant::now();
    let full = engine.range_batch(&workload);
    let full_batch_seconds = t2.elapsed().as_secs_f64();
    let full_result_ids = full.iter().map(Vec::len).sum();

    let simplified_batch_seconds = engine.has_kept_bitmaps().then(|| {
        let t3 = Instant::now();
        for q in &workload {
            std::hint::black_box(engine.range_kept(q));
        }
        t3.elapsed().as_secs_f64()
    });

    Ok(ShardServeReport {
        shards: engine.shard_count(),
        trajectories: engine.len(),
        points: engine.total_points(),
        open_seconds,
        index_seconds,
        queries: workload.len(),
        full_batch_seconds,
        simplified_batch_seconds,
        full_result_ids,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj_query::range_query_store;

    fn temp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("qdts_eval_serving_tests");
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join(name)
    }

    #[test]
    fn snapshot_then_serve_round_trips_at_smoke_scale() {
        let path = temp("smoke.snap");
        let report = snapshot_task(
            &SnapshotSource::Synthetic(Scale::Smoke),
            Some(0.3),
            &path,
            7,
        )
        .unwrap();
        assert!(report.points > 0);
        let kept = report.kept_points.unwrap();
        assert!(kept > 0 && kept <= (report.points * 3) / 10 + 2 * report.trajectories);
        assert_eq!(report.file_bytes, std::fs::metadata(&path).unwrap().len());

        let served = serve_task(&path, 20, 11).unwrap();
        assert_eq!(served.points, report.points);
        assert_eq!(served.trajectories, report.trajectories);
        assert_eq!(served.queries, 20);
        assert!(served.simplified_batch_seconds.is_some());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn served_results_match_owned_store_results() {
        // The acceptance bar: a database written with write_snapshot is
        // served over a MappedStore with byte-identical query results to
        // the owned store.
        let store = generate(&DatasetSpec::tdrive(Scale::Smoke), 3).to_store();
        let path = temp("parity.snap");
        trajectory::snapshot::write_snapshot(&store, &path).unwrap();
        let mapped = MappedStore::open(&path).unwrap();

        let spec = RangeWorkloadSpec::paper_default(25, QueryDistribution::Data);
        let workload = range_workload_store(&store, &spec, &mut StdRng::seed_from_u64(5));
        let owned_engine = QueryEngine::over_store(&store, EngineConfig::octree());
        let mapped_engine = QueryEngine::over_mapped(&mapped, EngineConfig::octree());
        for q in &workload {
            assert_eq!(owned_engine.range(q), mapped_engine.range(q));
            assert_eq!(mapped_engine.range(q), range_query_store(&store, q));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn shard_snapshot_then_serve_round_trips() {
        let dir = temp(&format!("sharded_smoke_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let report = shard_snapshot_task(
            &SnapshotSource::Synthetic(Scale::Smoke),
            &PartitionStrategy::Hash { parts: 3 },
            Some(0.3),
            &dir,
            7,
        )
        .unwrap();
        assert_eq!(report.shards, 3);
        assert!(report.points > 0);
        assert!(report.kept_points.unwrap() > 0);

        let served = shard_serve_task(&dir, 20, 11).unwrap();
        assert_eq!(served.shards, 3);
        assert_eq!(served.points, report.points);
        assert_eq!(served.trajectories, report.trajectories);
        assert_eq!(served.queries, 20);
        assert!(served.simplified_batch_seconds.is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sharded_serving_matches_single_store_serving() {
        // The acceptance bar: a mapped sharded engine returns the same
        // range results as a single-store engine over the unsharded
        // database, for every partitioner.
        let store = generate(&DatasetSpec::tdrive(Scale::Smoke), 3).to_store();
        let spec = RangeWorkloadSpec::paper_default(25, QueryDistribution::Data);
        let workload = range_workload_store(&store, &spec, &mut StdRng::seed_from_u64(5));
        let single = QueryEngine::over_store(&store, EngineConfig::octree());
        for strategy in [
            PartitionStrategy::grid_for(4),
            PartitionStrategy::Time { parts: 3 },
            PartitionStrategy::Hash { parts: 4 },
        ] {
            let dir = temp(&format!(
                "sharded_parity_{}_{}",
                strategy.label(),
                std::process::id()
            ));
            std::fs::remove_dir_all(&dir).ok();
            let shards = partition(&store, &strategy);
            ShardSet::write(&dir, &shards).unwrap();
            let mapped = ShardSet::load(&dir).unwrap().open_mapped().unwrap();
            let sharded = ShardedQueryEngine::from_mapped_shards(mapped, EngineConfig::octree());
            for q in &workload {
                assert_eq!(
                    sharded.range(q),
                    single.range(q),
                    "{} diverges",
                    strategy.label()
                );
            }
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn csv_source_feeds_the_pipeline() {
        let db = generate(&DatasetSpec::geolife(Scale::Smoke), 13);
        let csv = temp("source.csv");
        trajectory::io::write_csv_file(&db, &csv).unwrap();
        let snap = temp("from_csv.snap");
        let report = snapshot_task(&SnapshotSource::Csv(csv.clone()), None, &snap, 1).unwrap();
        assert_eq!(report.trajectories, db.len());
        assert_eq!(report.points, db.total_points());
        assert_eq!(report.kept_points, None);
        let served = serve_task(&snap, 5, 2).unwrap();
        assert!(served.simplified_batch_seconds.is_none());
        std::fs::remove_file(&csv).ok();
        std::fs::remove_file(&snap).ok();
    }
}
