//! The `snapshot` / `serve` tasks: CSV → snapshot once, then query
//! straight from the mapping.
//!
//! This is the operational pipeline the snapshot format exists for. The
//! **snapshot** task pays the expensive ingestion exactly once — parse
//! CSV (or generate a synthetic database), optionally simplify to a
//! budget, write one `.snap` file (or a shard-set directory). The
//! **serve** task then stands up a database from whatever is at the
//! path with one call — [`TrajDb::open`] auto-detects snapshot file vs.
//! shard directory vs. raw CSV, mmaps what can be mmapped, builds the
//! configured indexes (per shard, in parallel), and retains any
//! persisted kept bitmap — and executes a *mixed* range + kNN +
//! similarity workload as **one** heterogeneous [`QueryBatch`] pass,
//! plus a kept-bitmap range batch when the source was written
//! simplified.
//!
//! The wire variant ([`wire_serve_task`]) runs the same mixed workload
//! over the framed TCP protocol: a loopback `traj-serve` server with
//! batched admission, several concurrent client connections, and the
//! same result fingerprint as the in-process pass.
//!
//! The cluster variant ([`cluster_serve_task`]) distributes a shard
//! directory: one loopback wire server per shard snapshot, a
//! [`Placement`](traj_serve::Placement) built from their addresses, and
//! a [`Coordinator`](traj_serve::Coordinator) fanning the same mixed
//! workload out and merging globally — its fingerprint must match the
//! in-process one, byte for byte.
//!
//! The live variant ([`live_serve_task`]) exercises the ingestion
//! layer: a [`GenerationalDb`](traj_query::GenerationalDb) behind the
//! same wire server, trajectories ingested over the wire (each ack a
//! WAL sync), a range workload answered from the merged base+delta
//! view, and a compaction fold whose before/after answers must be
//! byte-identical.
//!
//! All tasks are exposed as library functions (smoke-tested) and
//! through the `snapshot_serve` binary:
//!
//! ```text
//! cargo run -p qdts-eval --release --bin snapshot_serve -- \
//!     snapshot --out /tmp/tdrive.snap --scale small --ratio 0.25
//! cargo run -p qdts-eval --release --bin snapshot_serve -- \
//!     serve --snap /tmp/tdrive.snap --queries 100
//! ```

use std::path::Path;
use std::time::Instant;

use traj_query::knn::Dissimilarity;
use traj_query::{
    DbOptions, KnnQuery, QueryBatch, QueryDistribution, QueryExecutor, RangeWorkloadSpec,
    SimilarityQuery, TrajDb,
};
use traj_simp::{Simplifier, Uniform};
use trajectory::gen::{generate, DatasetSpec, Scale};
use trajectory::io::read_csv_store;
use trajectory::shard::{partition, PartitionStrategy, Shard, ShardSet};
use trajectory::snapshot::{write_snapshot_quantized, write_snapshot_with};
use trajectory::PointStore;

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Where the `snapshot` task's database comes from.
#[derive(Debug, Clone)]
pub enum SnapshotSource {
    /// Parse a `traj_id,x,y,t` CSV file.
    Csv(std::path::PathBuf),
    /// Generate a T-Drive-shaped synthetic database at `scale`.
    Synthetic(Scale),
}

/// What the `snapshot` task produced.
#[derive(Debug, Clone)]
pub struct SnapshotReport {
    /// Trajectories in the store.
    pub trajectories: usize,
    /// Total points in the store.
    pub points: usize,
    /// Points the kept bitmap selects, when a simplification was applied.
    pub kept_points: Option<usize>,
    /// Size of the written snapshot file in bytes.
    pub file_bytes: u64,
    /// Seconds spent acquiring the store (CSV parse or generation).
    pub ingest_seconds: f64,
    /// Seconds spent simplifying (0 when `ratio` is `None`).
    pub simplify_seconds: f64,
    /// Seconds spent writing the snapshot.
    pub write_seconds: f64,
}

/// The `snapshot` task: acquire a database, optionally simplify it to
/// `ratio · N` points (uniform baseline — the cheapest simplifier; swap
/// in RL4QDTS offline), and persist everything as one snapshot file.
///
/// `quantize` switches the columns to the delta-quantized codec with the
/// given maximum per-coordinate error (meters / seconds): the file
/// shrinks severalfold and [`TrajDb::open`] decodes it transparently.
pub fn snapshot_task(
    source: &SnapshotSource,
    ratio: Option<f64>,
    quantize: Option<f64>,
    out: &Path,
    seed: u64,
) -> Result<SnapshotReport, Box<dyn std::error::Error>> {
    let t0 = Instant::now();
    let store = acquire_store(source, seed)?;
    let ingest_seconds = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let (kept, kept_points, simplify_seconds) = match ratio {
        Some(r) => {
            let budget = ((store.total_points() as f64 * r) as usize).max(1);
            let simp = Uniform.simplify_store(&store, budget);
            let kept_points = simp.total_points();
            (
                Some(simp.to_bitmap(&store)),
                Some(kept_points),
                t1.elapsed().as_secs_f64(),
            )
        }
        None => (None, None, 0.0),
    };

    let t2 = Instant::now();
    match quantize {
        Some(max_error) => write_snapshot_quantized(&store, kept.as_ref(), max_error, out)?,
        None => write_snapshot_with(&store, kept.as_ref(), out)?,
    }
    let write_seconds = t2.elapsed().as_secs_f64();

    Ok(SnapshotReport {
        trajectories: store.len(),
        points: store.total_points(),
        kept_points,
        file_bytes: std::fs::metadata(out)?.len(),
        ingest_seconds,
        simplify_seconds,
        write_seconds,
    })
}

/// What the `serve` task measured.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Shards served (1 for a single-store source).
    pub shards: usize,
    /// True when the source resolved to a sharded fan-out engine.
    pub sharded: bool,
    /// Trajectories served.
    pub trajectories: usize,
    /// Points served.
    pub points: usize,
    /// Seconds from path to query-ready database: format detection,
    /// mapping/validation, and index construction (per shard, in
    /// parallel) — everything [`TrajDb::open`] does.
    pub open_seconds: f64,
    /// Queries in the mixed batch, per kind: `[range, knn, similarity,
    /// range-kept]` (indexed like [`traj_query::QueryKind::ALL`]).
    pub kind_counts: [usize; 4],
    /// Seconds for the whole mixed batch — one heterogeneous
    /// data-parallel pass.
    pub batch_seconds: f64,
    /// Seconds for the range batch against the persisted kept bitmap(s)
    /// (`None` when the source carries no simplification).
    pub simplified_batch_seconds: Option<f64>,
    /// Total result-set size over the full-database batch (a cheap
    /// fingerprint for cross-checking serving paths).
    pub full_result_ids: usize,
}

/// Acquires the source database (CSV parse or synthetic generation) —
/// shared between the single-snapshot and sharded snapshot tasks.
fn acquire_store(
    source: &SnapshotSource,
    seed: u64,
) -> Result<PointStore, Box<dyn std::error::Error>> {
    Ok(match source {
        SnapshotSource::Csv(path) => read_csv_store(std::fs::File::open(path)?)?,
        SnapshotSource::Synthetic(scale) => {
            generate(&DatasetSpec::tdrive(*scale).with_trajectories(1000), seed).to_store()
        }
    })
}

/// The `serve` task: open whatever is at `path` through the façade
/// ([`TrajDb::open`] auto-detects snapshot file, shard-set directory, or
/// CSV) and execute a mixed data-distribution workload — `queries` range
/// queries plus `max(queries/5, 1)` each of kNN and similarity queries,
/// planned as **one** heterogeneous [`QueryBatch`] — and additionally a
/// kept-bitmap range batch when the source persists a simplification.
pub fn serve_task(
    path: &Path,
    queries: usize,
    seed: u64,
) -> Result<ServeReport, Box<dyn std::error::Error>> {
    let t0 = Instant::now();
    let db = TrajDb::open(path, DbOptions::new())?;
    let open_seconds = t0.elapsed().as_secs_f64();

    let spec = RangeWorkloadSpec::paper_default(queries, QueryDistribution::Data);
    let mut rng = StdRng::seed_from_u64(seed);
    let ranges = db.range_workload(&spec, &mut rng);
    let batch = mixed_batch(&db, &ranges, queries);
    let kind_counts = batch.kind_counts();

    let t1 = Instant::now();
    let results = db.execute_batch(&batch);
    let batch_seconds = t1.elapsed().as_secs_f64();
    let full_result_ids = results
        .iter()
        .map(|r| r.ids().map_or(0, <[usize]>::len))
        .sum();

    let simplified_batch_seconds = db.has_kept_bitmap().then(|| {
        let t2 = Instant::now();
        for q in &ranges {
            std::hint::black_box(db.range_kept(q));
        }
        t2.elapsed().as_secs_f64()
    });

    Ok(ServeReport {
        shards: db.shard_count(),
        sharded: db.is_sharded(),
        trajectories: db.len(),
        points: db.total_points(),
        open_seconds,
        kind_counts,
        batch_seconds,
        simplified_batch_seconds,
        full_result_ids,
    })
}

/// Builds the mixed serving workload: the range cubes plus
/// `max(queries/5, 1)` each of kNN and similarity queries anchored on
/// served trajectories (strided through the database so shards all
/// contribute), windowed to each query trajectory's own span.
fn mixed_batch(db: &TrajDb, ranges: &[trajectory::Cube], queries: usize) -> QueryBatch {
    let mut batch = QueryBatch::new();
    for q in ranges {
        batch.push_range(*q);
    }
    let traj_queries = (queries / 5).max(1).min(db.len());
    for i in 0..traj_queries {
        let stride = db.len() / traj_queries;
        let t = db.trajectory(i * stride);
        let (ts, te) = t.time_span();
        batch.push_knn(KnnQuery {
            query: t.clone(),
            ts,
            te,
            k: 3,
            measure: Dissimilarity::edr_paper(),
        });
        batch.push_similarity(SimilarityQuery {
            query: t,
            ts,
            te,
            delta: 5_000.0,
            step: 600.0,
        });
    }
    batch
}

/// What the wire `serve` task measured.
#[derive(Debug, Clone)]
pub struct WireServeReport {
    /// Trajectories served.
    pub trajectories: usize,
    /// Points served.
    pub points: usize,
    /// Seconds from path to query-ready database ([`TrajDb::open`]).
    pub open_seconds: f64,
    /// Client connections used.
    pub clients: usize,
    /// Requests answered over the wire.
    pub requests: u64,
    /// Queries answered over the wire.
    pub queries: u64,
    /// Engine passes the admission layer coalesced those requests into.
    pub batches: u64,
    /// Mean queries per coalesced pass.
    pub mean_batch: f64,
    /// Seconds for the whole wire workload (all clients, wall clock).
    pub serve_seconds: f64,
    /// Total result-set size over the wire (must match the in-process
    /// fingerprint for the same workload).
    pub full_result_ids: usize,
}

/// The wire `serve` task: open whatever is at `path` behind a loopback
/// [`Server`](traj_serve::Server) with batched admission, split the
/// same mixed workload [`serve_task`] runs in-process across `clients`
/// concurrent connections, and report throughput plus coalescing
/// stats. The result-id fingerprint lets callers cross-check the wire
/// path against in-process execution.
pub fn wire_serve_task(
    path: &Path,
    queries: usize,
    clients: usize,
    seed: u64,
) -> Result<WireServeReport, Box<dyn std::error::Error>> {
    let t0 = Instant::now();
    let db = TrajDb::open(path, DbOptions::new())?;
    let open_seconds = t0.elapsed().as_secs_f64();

    let spec = RangeWorkloadSpec::paper_default(queries, QueryDistribution::Data);
    let mut rng = StdRng::seed_from_u64(seed);
    let ranges = db.range_workload(&spec, &mut rng);
    let batch = mixed_batch(&db, &ranges, queries);
    let (trajectories, points) = (db.len(), db.total_points());

    let clients = clients.max(1);
    let server = traj_serve::Server::start(db, "127.0.0.1:0", traj_serve::ServeOptions::batched())?;
    let addr = server.local_addr();

    // Round-robin the batch across the connections; each client sends
    // its share as one request.
    let shares: Vec<Vec<traj_query::Query>> = {
        let mut shares = vec![Vec::new(); clients];
        for (i, q) in batch.into_queries().into_iter().enumerate() {
            shares[i % clients].push(q);
        }
        shares
    };
    let t1 = Instant::now();
    let full_result_ids = std::thread::scope(|scope| {
        let handles: Vec<_> = shares
            .into_iter()
            .filter(|s| !s.is_empty())
            .map(|share| {
                scope.spawn(move || -> Result<usize, traj_serve::WireError> {
                    let mut client = traj_serve::Client::connect(addr)?;
                    let results = client.execute_batch(&QueryBatch::from_queries(share))?;
                    Ok(results
                        .iter()
                        .map(|r| r.ids().map_or(0, <[usize]>::len))
                        .sum())
                })
            })
            .collect();
        let mut total = 0usize;
        for h in handles {
            total += h.join().expect("wire client thread panicked")?;
        }
        Ok::<usize, traj_serve::WireError>(total)
    })?;
    let serve_seconds = t1.elapsed().as_secs_f64();

    let stats = server.stats();
    server.shutdown();
    Ok(WireServeReport {
        trajectories,
        points,
        open_seconds,
        clients,
        requests: stats.requests,
        queries: stats.queries,
        batches: stats.batches,
        mean_batch: stats.mean_batch_size(),
        serve_seconds,
        full_result_ids,
    })
}

/// What the live (ingesting) serve task measured.
#[derive(Debug, Clone)]
pub struct LiveServeReport {
    /// Trajectories in the immutable base generation.
    pub base_trajectories: usize,
    /// Trajectories accepted over the wire.
    pub ingested_trajectories: u64,
    /// Points accepted over the wire (pre-simplification).
    pub ingested_points: u64,
    /// Snapshot generation serving before the final compaction.
    pub generation_before: u64,
    /// Snapshot generation serving after the final compaction.
    pub generation_after: u64,
    /// Seconds across all ingest round-trips (append + WAL sync + ack).
    pub ingest_seconds: f64,
    /// Seconds for the range batch over the wire, delta still resident.
    pub query_seconds: f64,
    /// Total result-set size over the wire (cross-checked against the
    /// in-process merged view, and again after compaction).
    pub full_result_ids: usize,
}

/// The live serve task: stand a [`GenerationalDb`] (synthetic base, WAL
/// in `dir`) behind a loopback wire server, ingest `ingest_batches`
/// batches of 8 fresh trajectories over the wire, answer a `queries`-
/// cube range workload from the merged base+delta view, then compact
/// and re-run the workload — erroring if the wire answers ever diverge
/// from in-process execution or change across the fold.
///
/// [`GenerationalDb`]: traj_query::GenerationalDb
pub fn live_serve_task(
    dir: &Path,
    queries: usize,
    ingest_batches: usize,
    seed: u64,
) -> Result<LiveServeReport, Box<dyn std::error::Error>> {
    use std::sync::Arc;
    use traj_query::GenerationalDb;
    use trajectory::KeepAll;

    let store = generate(
        &DatasetSpec::tdrive(Scale::Smoke).with_trajectories(64),
        seed,
    )
    .to_store();
    let db = Arc::new(GenerationalDb::create(
        dir,
        &store,
        DbOptions::new(),
        Box::new(|| Box::new(KeepAll)),
    )?);
    let base_trajectories = store.len();
    let generation_before = db.generation();

    let server = traj_serve::Server::start(
        Arc::clone(&db),
        "127.0.0.1:0",
        traj_serve::ServeOptions::batched(),
    )?;
    let mut client = traj_serve::Client::connect(server.local_addr())?;

    // Ingest fresh batches over the wire; every ack means one WAL sync.
    let mut ingested_trajectories = 0u64;
    let mut ingested_points = 0u64;
    let t0 = Instant::now();
    for b in 0..ingest_batches {
        let fresh = generate(
            &DatasetSpec::tdrive(Scale::Smoke).with_trajectories(8),
            seed.wrapping_add(100 + b as u64),
        );
        let trajs: Vec<trajectory::Trajectory> = fresh.iter().map(|(_, t)| t.clone()).collect();
        let points: u64 = trajs.iter().map(|t| t.len() as u64).sum();
        let ack = client.ingest(&trajs)?;
        if ack.rejected != 0 {
            return Err(format!("live server rejected {} trajectories", ack.rejected).into());
        }
        ingested_trajectories += u64::from(ack.accepted);
        ingested_points += points;
    }
    let ingest_seconds = t0.elapsed().as_secs_f64();

    // A range workload over the base extent, answered from the merged
    // view with the whole delta still resident.
    let spec = RangeWorkloadSpec::paper_default(queries, QueryDistribution::Data);
    let ranges = traj_query::range_workload_store(&store, &spec, &mut StdRng::seed_from_u64(seed));
    let mut batch = QueryBatch::new();
    for q in &ranges {
        batch.push_range(*q);
    }
    let t1 = Instant::now();
    let wire = client.execute_batch(&batch)?;
    let query_seconds = t1.elapsed().as_secs_f64();
    if wire != db.execute_batch(&batch) {
        return Err("live wire results diverge from the in-process merged view".into());
    }
    let full_result_ids = wire.iter().map(|r| r.ids().map_or(0, <[usize]>::len)).sum();

    // Fold the delta into a new generation; answers must not move.
    db.compact()?;
    let generation_after = db.generation();
    if client.execute_batch(&batch)? != wire {
        return Err("live wire results changed across compaction".into());
    }

    server.shutdown();
    Ok(LiveServeReport {
        base_trajectories,
        ingested_trajectories,
        ingested_points,
        generation_before,
        generation_after,
        ingest_seconds,
        query_seconds,
        full_result_ids,
    })
}

/// What the cluster `serve` task measured.
#[derive(Debug, Clone)]
pub struct ClusterServeReport {
    /// Shards in the cluster (one wire server each).
    pub shards: usize,
    /// Trajectories served across the cluster.
    pub trajectories: usize,
    /// Points served across the cluster.
    pub points: usize,
    /// Seconds to stand the cluster up: per-shard opens + servers,
    /// placement build, coordinator connect + handshakes.
    pub open_seconds: f64,
    /// Seconds for the whole distributed workload (fan-out + merge).
    pub serve_seconds: f64,
    /// Total result-set size through the coordinator.
    pub full_result_ids: usize,
    /// Total result-set size of the same workload executed in-process
    /// over the shard directory — must equal `full_result_ids`.
    pub in_process_result_ids: usize,
}

/// The cluster `serve` task: serve each shard snapshot of the directory
/// at `path` behind its own loopback wire server, dial them all through
/// a [`Coordinator`](traj_serve::Coordinator) built from the manifest's
/// id assignments, run the same mixed workload [`serve_task`] runs, and
/// cross-check the distributed fingerprint against in-process
/// execution of the identical batch.
pub fn cluster_serve_task(
    path: &Path,
    queries: usize,
    seed: u64,
) -> Result<ClusterServeReport, Box<dyn std::error::Error>> {
    use traj_serve::{Coordinator, CoordinatorOptions, Placement, ResponseStatus};

    let t0 = Instant::now();
    let set = ShardSet::load(path)?;
    let mut servers = Vec::with_capacity(set.len());
    let mut parts = Vec::with_capacity(set.len());
    for e in set.entries() {
        let server = traj_serve::Server::open(
            path.join(&e.file),
            DbOptions::new(),
            "127.0.0.1:0",
            traj_serve::ServeOptions::batched(),
        )?;
        parts.push((server.local_addr().to_string(), e.global_ids.clone()));
        servers.push(server);
    }
    let placement = Placement::from_parts(parts)?;
    let coord = Coordinator::connect(placement, CoordinatorOptions::default())?;
    let open_seconds = t0.elapsed().as_secs_f64();

    // The same workload the in-process serve task runs over this path.
    let db = TrajDb::open(path, DbOptions::new())?;
    let spec = RangeWorkloadSpec::paper_default(queries, QueryDistribution::Data);
    let mut rng = StdRng::seed_from_u64(seed);
    let ranges = db.range_workload(&spec, &mut rng);
    let batch = mixed_batch(&db, &ranges, queries);

    let t1 = Instant::now();
    let response = coord.execute_batch(&batch)?;
    let serve_seconds = t1.elapsed().as_secs_f64();
    if response.status != ResponseStatus::Complete {
        return Err(format!("cluster answered degraded: {:?}", response.status).into());
    }
    let fingerprint = |results: &[traj_query::QueryResult]| {
        results
            .iter()
            .map(|r| r.ids().map_or(0, <[usize]>::len))
            .sum::<usize>()
    };
    let in_process = db.execute_batch(&batch);
    if response.results != in_process {
        return Err("distributed results diverge from in-process execution".into());
    }
    let full_result_ids = fingerprint(&response.results);
    let in_process_result_ids = fingerprint(&in_process);

    for server in servers {
        server.shutdown();
    }
    Ok(ClusterServeReport {
        shards: set.len(),
        trajectories: db.len(),
        points: db.total_points(),
        open_seconds,
        serve_seconds,
        full_result_ids,
        in_process_result_ids,
    })
}

// ---------------------------------------------------------------------
// Sharded snapshot / serve.
// ---------------------------------------------------------------------

/// What the sharded `snapshot` task produced.
#[derive(Debug, Clone)]
pub struct ShardSnapshotReport {
    /// Number of shards written.
    pub shards: usize,
    /// Trajectories across all shards.
    pub trajectories: usize,
    /// Points across all shards.
    pub points: usize,
    /// Kept points across all shards, when a simplification was applied.
    pub kept_points: Option<usize>,
    /// Total bytes across all shard snapshot files (manifest excluded).
    pub file_bytes: u64,
    /// Seconds spent acquiring the store.
    pub ingest_seconds: f64,
    /// Seconds spent partitioning.
    pub partition_seconds: f64,
    /// Seconds spent simplifying all shards (0 when `ratio` is `None`).
    pub simplify_seconds: f64,
    /// Seconds spent writing snapshots + manifest.
    pub write_seconds: f64,
}

/// The sharded `snapshot` task: acquire a database, partition it with
/// `strategy`, optionally simplify every shard to its proportional slice
/// of `ratio · N` points, and persist the whole set as one snapshot file
/// per shard plus the manifest.
pub fn shard_snapshot_task(
    source: &SnapshotSource,
    strategy: &PartitionStrategy,
    ratio: Option<f64>,
    quantize: Option<f64>,
    out_dir: &Path,
    seed: u64,
) -> Result<ShardSnapshotReport, Box<dyn std::error::Error>> {
    let t0 = Instant::now();
    let store = acquire_store(source, seed)?;
    let ingest_seconds = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let shards: Vec<Shard> = partition(&store, strategy);
    let partition_seconds = t1.elapsed().as_secs_f64();

    let (set, kept_points, simplify_seconds, write_seconds) = match ratio {
        Some(r) => {
            let budget = ((store.total_points() as f64 * r) as usize).max(1);
            let t2 = Instant::now();
            let simps = traj_simp::simplify_shards(&Uniform, &shards, budget);
            let simplify_seconds = t2.elapsed().as_secs_f64();
            let kept: usize = simps.iter().map(|s| s.total_points()).sum();
            let t3 = Instant::now();
            let set = match quantize {
                Some(max_error) => traj_simp::write_simplified_shard_set_quantized(
                    out_dir, &shards, &simps, max_error,
                )?,
                None => traj_simp::write_simplified_shard_set(out_dir, &shards, &simps)?,
            };
            (
                set,
                Some(kept),
                simplify_seconds,
                t3.elapsed().as_secs_f64(),
            )
        }
        None => {
            let t3 = Instant::now();
            let set = match quantize {
                Some(max_error) => ShardSet::write_quantized(out_dir, &shards, None, max_error)?,
                None => ShardSet::write(out_dir, &shards)?,
            };
            (set, None, 0.0, t3.elapsed().as_secs_f64())
        }
    };

    let mut file_bytes = 0;
    for entry in set.entries() {
        file_bytes += std::fs::metadata(out_dir.join(&entry.file))?.len();
    }
    Ok(ShardSnapshotReport {
        shards: shards.len(),
        trajectories: store.len(),
        points: store.total_points(),
        kept_points,
        file_bytes,
        ingest_seconds,
        partition_seconds,
        simplify_seconds,
        write_seconds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj_query::{range_query_store, range_workload_store};
    use trajectory::AsColumns;

    fn temp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("qdts_eval_serving_tests");
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join(name)
    }

    #[test]
    fn snapshot_then_serve_round_trips_at_smoke_scale() {
        let path = temp("smoke.snap");
        let report = snapshot_task(
            &SnapshotSource::Synthetic(Scale::Smoke),
            Some(0.3),
            None,
            &path,
            7,
        )
        .unwrap();
        assert!(report.points > 0);
        let kept = report.kept_points.unwrap();
        assert!(kept > 0 && kept <= (report.points * 3) / 10 + 2 * report.trajectories);
        assert_eq!(report.file_bytes, std::fs::metadata(&path).unwrap().len());

        let served = serve_task(&path, 20, 11).unwrap();
        assert!(!served.sharded);
        assert_eq!(served.shards, 1);
        assert_eq!(served.points, report.points);
        assert_eq!(served.trajectories, report.trajectories);
        assert_eq!(served.kind_counts[0], 20, "20 range queries");
        assert!(served.kind_counts[1] >= 1 && served.kind_counts[2] >= 1);
        assert!(served.simplified_batch_seconds.is_some());

        // The wire path serves the same snapshot over loopback with the
        // same result fingerprint as the in-process pass above.
        let wired = wire_serve_task(&path, 20, 4, 11).unwrap();
        assert_eq!(wired.points, report.points);
        assert_eq!(wired.trajectories, report.trajectories);
        assert_eq!(wired.full_result_ids, served.full_result_ids);
        assert_eq!(
            wired.queries,
            (served.kind_counts.iter().sum::<usize>()) as u64
        );
        assert!(wired.requests >= 1 && wired.requests <= 4);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn served_results_match_owned_store_results() {
        // The acceptance bar: a database written with write_snapshot and
        // reopened through the façade serves byte-identical query results
        // to the owned store.
        let store = generate(&DatasetSpec::tdrive(Scale::Smoke), 3).to_store();
        let path = temp("parity.snap");
        trajectory::snapshot::write_snapshot(&store, &path).unwrap();
        let served = TrajDb::open(&path, DbOptions::new()).unwrap();
        assert!(!served.is_sharded());

        let spec = RangeWorkloadSpec::paper_default(25, QueryDistribution::Data);
        let workload = range_workload_store(&store, &spec, &mut StdRng::seed_from_u64(5));
        let owned = TrajDb::from_store(store.clone(), DbOptions::new());
        for q in &workload {
            assert_eq!(owned.range(q), served.range(q));
            assert_eq!(served.range(q), range_query_store(&store, q));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn shard_snapshot_then_serve_round_trips() {
        let dir = temp(&format!("sharded_smoke_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let report = shard_snapshot_task(
            &SnapshotSource::Synthetic(Scale::Smoke),
            &PartitionStrategy::Hash { parts: 3 },
            Some(0.3),
            None,
            &dir,
            7,
        )
        .unwrap();
        assert_eq!(report.shards, 3);
        assert!(report.points > 0);
        assert!(report.kept_points.unwrap() > 0);

        // The same serve task auto-detects the directory layout.
        let served = serve_task(&dir, 20, 11).unwrap();
        assert!(served.sharded);
        assert_eq!(served.shards, 3);
        assert_eq!(served.points, report.points);
        assert_eq!(served.trajectories, report.trajectories);
        assert_eq!(served.kind_counts[0], 20);
        assert!(served.simplified_batch_seconds.is_some());

        // The distributed path — one wire server per shard behind a
        // coordinator — answers the same workload identically (the task
        // itself errors on any divergence).
        let cluster = cluster_serve_task(&dir, 20, 11).unwrap();
        assert_eq!(cluster.shards, 3);
        assert_eq!(cluster.trajectories, report.trajectories);
        assert_eq!(cluster.points, report.points);
        assert_eq!(cluster.full_result_ids, cluster.in_process_result_ids);
        assert_eq!(cluster.full_result_ids, served.full_result_ids);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sharded_serving_matches_single_store_serving() {
        // The acceptance bar: an opened shard directory returns the same
        // range results as the unsharded database, for every partitioner.
        let store = generate(&DatasetSpec::tdrive(Scale::Smoke), 3).to_store();
        let spec = RangeWorkloadSpec::paper_default(25, QueryDistribution::Data);
        let workload = range_workload_store(&store, &spec, &mut StdRng::seed_from_u64(5));
        let single = TrajDb::from_store(store.clone(), DbOptions::new());
        for strategy in [
            PartitionStrategy::grid_for(4),
            PartitionStrategy::Time { parts: 3 },
            PartitionStrategy::Hash { parts: 4 },
        ] {
            let dir = temp(&format!(
                "sharded_parity_{}_{}",
                strategy.label(),
                std::process::id()
            ));
            std::fs::remove_dir_all(&dir).ok();
            let shards = partition(&store, &strategy);
            ShardSet::write(&dir, &shards).unwrap();
            let sharded = TrajDb::open(&dir, DbOptions::new()).unwrap();
            assert!(sharded.is_sharded());
            for q in &workload {
                assert_eq!(
                    sharded.range(q),
                    single.range(q),
                    "{} diverges",
                    strategy.label()
                );
            }
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn quantized_snapshot_is_smaller_and_serves_within_bound() {
        // End-to-end: snapshot_task with a quantize bound writes a file
        // measurably smaller than the raw one, serve_task opens it with no
        // extra flags, and every coordinate decodes within the bound.
        let raw_path = temp("quant_raw.snap");
        let q_path = temp("quant_q.snap");
        let raw = snapshot_task(
            &SnapshotSource::Synthetic(Scale::Smoke),
            Some(0.3),
            None,
            &raw_path,
            7,
        )
        .unwrap();
        let quant = snapshot_task(
            &SnapshotSource::Synthetic(Scale::Smoke),
            Some(0.3),
            Some(0.5),
            &q_path,
            7,
        )
        .unwrap();
        assert_eq!(quant.points, raw.points);
        assert_eq!(quant.kept_points, raw.kept_points);
        assert!(
            quant.file_bytes * 2 < raw.file_bytes,
            "quantized {} vs raw {} bytes",
            quant.file_bytes,
            raw.file_bytes
        );

        let served = serve_task(&q_path, 10, 11).unwrap();
        assert_eq!(served.points, raw.points);
        assert!(served.simplified_batch_seconds.is_some());

        // Coordinate-level bound check against the raw snapshot.
        let raw_db = TrajDb::open(&raw_path, DbOptions::new()).unwrap();
        let q_db = TrajDb::open(&q_path, DbOptions::new()).unwrap();
        let rs = raw_db.as_single().unwrap().store();
        let qs = q_db.as_single().unwrap().store();
        let bound = 0.5 * 1.000_001;
        for (a, b) in rs.xs().iter().zip(qs.xs()) {
            assert!((a - b).abs() <= bound);
        }
        for (a, b) in rs.ys().iter().zip(qs.ys()) {
            assert!((a - b).abs() <= bound);
        }
        for (a, b) in rs.ts().iter().zip(qs.ts()) {
            assert!((a - b).abs() <= bound);
        }
        std::fs::remove_file(&raw_path).ok();
        std::fs::remove_file(&q_path).ok();
    }

    #[test]
    fn quantized_shard_set_serves_and_shrinks() {
        let raw_dir = temp(&format!("quant_shards_raw_{}", std::process::id()));
        let q_dir = temp(&format!("quant_shards_q_{}", std::process::id()));
        std::fs::remove_dir_all(&raw_dir).ok();
        std::fs::remove_dir_all(&q_dir).ok();
        let raw = shard_snapshot_task(
            &SnapshotSource::Synthetic(Scale::Smoke),
            &PartitionStrategy::Hash { parts: 3 },
            Some(0.3),
            None,
            &raw_dir,
            7,
        )
        .unwrap();
        let quant = shard_snapshot_task(
            &SnapshotSource::Synthetic(Scale::Smoke),
            &PartitionStrategy::Hash { parts: 3 },
            Some(0.3),
            Some(0.5),
            &q_dir,
            7,
        )
        .unwrap();
        assert_eq!(quant.points, raw.points);
        assert_eq!(quant.kept_points, raw.kept_points);
        assert!(
            quant.file_bytes * 2 < raw.file_bytes,
            "quantized shards {} vs raw {} bytes",
            quant.file_bytes,
            raw.file_bytes
        );
        let served = serve_task(&q_dir, 10, 11).unwrap();
        assert!(served.sharded);
        assert_eq!(served.points, raw.points);
        assert!(served.simplified_batch_seconds.is_some());
        std::fs::remove_dir_all(&raw_dir).ok();
        std::fs::remove_dir_all(&q_dir).ok();
    }

    #[test]
    fn live_serve_ingests_and_compacts() {
        let dir = temp(&format!("live_serve_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let report = live_serve_task(&dir, 10, 3, 21).unwrap();
        assert_eq!(report.base_trajectories, 64);
        assert_eq!(report.ingested_trajectories, 24);
        assert!(report.ingested_points > 0);
        assert!(
            report.generation_after > report.generation_before,
            "compaction must advance the generation: {} -> {}",
            report.generation_before,
            report.generation_after
        );
        assert!(report.full_result_ids > 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn csv_source_feeds_the_pipeline() {
        let db = generate(&DatasetSpec::geolife(Scale::Smoke), 13);
        let csv = temp("source.csv");
        trajectory::io::write_csv_file(&db, &csv).unwrap();
        let snap = temp("from_csv.snap");
        let report =
            snapshot_task(&SnapshotSource::Csv(csv.clone()), None, None, &snap, 1).unwrap();
        assert_eq!(report.trajectories, db.len());
        assert_eq!(report.points, db.total_points());
        assert_eq!(report.kept_points, None);
        let served = serve_task(&snap, 5, 2).unwrap();
        assert!(served.simplified_batch_seconds.is_none());
        // The façade also serves the raw CSV directly (owned columns).
        let from_csv = serve_task(&csv, 5, 2).unwrap();
        assert_eq!(from_csv.trajectories, served.trajectories);
        assert_eq!(from_csv.points, served.points);
        assert_eq!(from_csv.full_result_ids, served.full_result_ids);
        std::fs::remove_file(&csv).ok();
        std::fs::remove_file(&snap).ok();
    }
}
