//! Parameter studies (experiments 5–8, detailed in the paper's technical
//! report): the start level `S`, end level `E`, Agent-Point's `K`, and the
//! kNN `k`.

use crate::experiments::{query_count, ratio_sweep};
use crate::suite::{state_workload, Rl4QdtsSimplifier};
use crate::table::Table;
use crate::tasks::{build_tasks, eval_range_with_engines, TaskParams};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rl4qdts::{train, PolicyVariant, Rl4QdtsConfig, TrainerConfig};
use traj_query::knn::{Dissimilarity, KnnQuery};
use traj_query::workload::RangeWorkloadSpec;
use traj_query::{f1_sets, mean_f1, EngineConfig, QueryDistribution, QueryEngine};
use traj_simp::Simplifier;
use trajectory::gen::{generate, DatasetSpec, Scale};
use trajectory::TrajectoryDb;

const DIST: QueryDistribution = QueryDistribution::Data;

fn trainer_for(scale: Scale) -> TrainerConfig {
    let workload = RangeWorkloadSpec {
        count: query_count(scale),
        spatial_extent: 2_000.0,
        temporal_extent: 7.0 * 86_400.0,
        dist: DIST,
    };
    TrainerConfig {
        num_dbs: 2,
        trajs_per_db: 10,
        episodes_per_db: 1,
        ratio: 0.02,
        workload,
    }
}

/// Trains with `config`, then reports held-out range F1 and the combined
/// train+simplify wall time. `truth` is the sweep-wide engine over the
/// test database, built once by the caller.
fn score_config(
    config: Rl4QdtsConfig,
    train_db: &TrajectoryDb,
    test_db: &TrajectoryDb,
    truth: &QueryEngine<'_>,
    scale: Scale,
    seed: u64,
) -> (f64, f64) {
    let started = std::time::Instant::now();
    let (model, _) = train(train_db, config, &trainer_for(scale), seed);
    let ratio = ratio_sweep(scale)[0];
    let budget =
        ((test_db.total_points() as f64 * ratio) as usize).max(traj_simp::min_points(test_db));
    let rl = Rl4QdtsSimplifier {
        model,
        state_queries: state_workload(test_db, DIST, query_count(scale), seed ^ 9),
        seed,
        variant: PolicyVariant::FULL,
    };
    let simp = rl.simplify(test_db, budget).materialize(test_db);
    let elapsed = started.elapsed().as_secs_f64();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9a);
    let tasks = build_tasks(
        test_db,
        DIST,
        TaskParams::for_scale(scale, query_count(scale)),
        &mut rng,
    );
    let simp_engine = QueryEngine::over(&simp, EngineConfig::octree());
    (
        eval_range_with_engines(truth, &simp_engine, &tasks),
        elapsed,
    )
}

/// Sweeps the start level `S` (with `E` fixed at the scaled default).
pub fn run_start_level(scale: Scale, seed: u64) -> Table {
    let db = generate(&DatasetSpec::geolife(scale), seed);
    let (train_db, test_db) = {
        let n = (db.len() / 4).max(2);
        db.split_at(n)
    };
    let truth = QueryEngine::over(&test_db, EngineConfig::octree());
    let base = Rl4QdtsConfig::scaled_to(&train_db).with_delta(25);
    let mut table = Table::new(&["S", "Range F1", "Time (s)"]);
    for s in 1..=base.max_depth.saturating_sub(1) {
        let (f1, time) = score_config(
            base.with_start_level(s),
            &train_db,
            &test_db,
            &truth,
            scale,
            seed,
        );
        table.row(vec![
            s.to_string(),
            format!("{f1:.3}"),
            format!("{time:.2}"),
        ]);
    }
    table
}

/// Sweeps the end level `E` (with `S` fixed at 1).
pub fn run_max_depth(scale: Scale, seed: u64) -> Table {
    let db = generate(&DatasetSpec::geolife(scale), seed);
    let (train_db, test_db) = {
        let n = (db.len() / 4).max(2);
        db.split_at(n)
    };
    let truth = QueryEngine::over(&test_db, EngineConfig::octree());
    let base = Rl4QdtsConfig::scaled_to(&train_db)
        .with_delta(25)
        .with_start_level(1);
    let mut table = Table::new(&["E", "Range F1", "Time (s)"]);
    for e in 3..=(base.max_depth + 2).min(10) {
        let (f1, time) = score_config(
            base.with_max_depth(e),
            &train_db,
            &test_db,
            &truth,
            scale,
            seed,
        );
        table.row(vec![
            e.to_string(),
            format!("{f1:.3}"),
            format!("{time:.2}"),
        ]);
    }
    table
}

/// Sweeps Agent-Point's `K`.
pub fn run_k(scale: Scale, seed: u64) -> Table {
    let db = generate(&DatasetSpec::geolife(scale), seed);
    let (train_db, test_db) = {
        let n = (db.len() / 4).max(2);
        db.split_at(n)
    };
    let truth = QueryEngine::over(&test_db, EngineConfig::octree());
    let base = Rl4QdtsConfig::scaled_to(&train_db).with_delta(25);
    let mut table = Table::new(&["K", "Range F1", "Time (s)"]);
    for k in [1usize, 2, 4, 8] {
        let (f1, time) = score_config(base.with_k(k), &train_db, &test_db, &truth, scale, seed);
        table.row(vec![
            k.to_string(),
            format!("{f1:.3}"),
            format!("{time:.2}"),
        ]);
    }
    table
}

/// Sweeps the kNN `k` on a fixed trained model (experiment 8): F1 of both
/// kNN variants as `k` grows.
pub fn run_knn_k(scale: Scale, seed: u64) -> Table {
    let db = generate(&DatasetSpec::geolife(scale), seed);
    let (train_db, test_db) = {
        let n = (db.len() / 4).max(2);
        db.split_at(n)
    };
    let model = crate::suite::train_rl4qdts(&train_db, DIST, query_count(scale), seed);
    let ratio = ratio_sweep(scale)[0];
    let budget =
        ((test_db.total_points() as f64 * ratio) as usize).max(traj_simp::min_points(&test_db));
    let rl = Rl4QdtsSimplifier {
        model,
        state_queries: state_workload(&test_db, DIST, query_count(scale), seed ^ 4),
        seed,
        variant: PolicyVariant::FULL,
    };
    let simplified = rl.simplify(&test_db, budget).materialize(&test_db);

    let mut rng = StdRng::seed_from_u64(seed ^ 0x5b);
    let params = TaskParams::for_scale(scale, query_count(scale));
    let tasks = build_tasks(&test_db, DIST, params, &mut rng);

    let mut table = Table::new(&["k", "kNN(EDR) F1", "kNN(t2vec) F1"]);
    for k in [1usize, 3, 5, 10] {
        let mut cells = Vec::new();
        for measure in [
            Dissimilarity::Edr {
                eps: params.edr_eps,
            },
            Dissimilarity::t2vec_default(),
        ] {
            let scores: Vec<_> = tasks
                .knn_queries
                .iter()
                .map(|(q, ts, te)| {
                    let query = KnnQuery {
                        query: q.clone(),
                        ts: *ts,
                        te: *te,
                        k,
                        measure,
                    };
                    f1_sets(&query.execute(&test_db), &query.execute(&simplified))
                })
                .collect();
            cells.push(format!("{:.3}", mean_f1(&scores)));
        }
        table.row(vec![k.to_string(), cells[0].clone(), cells[1].clone()]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k_sweep_has_four_rows() {
        let t = run_k(Scale::Smoke, 41);
        assert_eq!(t.len(), 4);
        for r in t.rows() {
            let f1: f64 = r[1].parse().unwrap();
            assert!((0.0..=1.0).contains(&f1));
        }
    }

    #[test]
    fn knn_k_sweep_scores_both_measures() {
        let t = run_knn_k(Scale::Smoke, 43);
        assert_eq!(t.len(), 4);
        assert_eq!(t.rows()[0].len(), 3);
    }
}
