//! Figures 4, 5, 6: RL4QDTS vs. the skyline baselines across compression
//! ratios, five query tasks per distribution.

use crate::experiments::{query_count, score_method};
use crate::suite::{
    baseline_suite, paper_skyline_names, select_by_name, state_workload, train_rl4qdts,
    Rl4QdtsSimplifier,
};
use crate::table::{mean, std_dev, Table};
use crate::tasks::{build_tasks, TaskParams, TaskScores};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rl4qdts::PolicyVariant;
use traj_query::QueryDistribution;
use trajectory::gen::{DatasetSpec, Scale};
use trajectory::TrajectoryDb;

/// The comparison outcome for one (dataset, distribution): one table per
/// query task with methods as rows and compression ratios as columns.
pub struct ComparisonOutcome {
    /// Distribution label.
    pub distribution: String,
    /// One table per task, ordered as [`TaskScores::NAMES`].
    pub per_task: Vec<(String, Table)>,
}

/// Runs one comparison figure.
///
/// `spec` selects the dataset (Geolife for Fig. 4, T-Drive for Fig. 5,
/// Chengdu for Fig. 6); `dists` the query distributions of the sub-figures;
/// `ratios` the x-axis.
pub fn run(
    spec: &DatasetSpec,
    dists: &[QueryDistribution],
    ratios: &[f64],
    scale: Scale,
    seed: u64,
    runs: usize,
) -> Vec<ComparisonOutcome> {
    let db = trajectory::gen::generate(spec, seed);
    let (train_db, test_db) = {
        let n = (db.len() / 4).max(2);
        db.split_at(n)
    };
    dists
        .iter()
        .map(|&dist| run_one(&train_db, &test_db, dist, ratios, scale, seed, runs))
        .collect()
}

fn run_one(
    train_db: &TrajectoryDb,
    test_db: &TrajectoryDb,
    dist: QueryDistribution,
    ratios: &[f64],
    scale: Scale,
    seed: u64,
    runs: usize,
) -> ComparisonOutcome {
    let suite = baseline_suite(train_db, seed);
    let names = paper_skyline_names(dist);
    let baselines = select_by_name(&suite, &names);
    let model = train_rl4qdts(train_db, dist, query_count(scale), seed);

    let mut rng = StdRng::seed_from_u64(seed ^ 0xbeef);
    let params = TaskParams::for_scale(scale, query_count(scale));
    let tasks = build_tasks(test_db, dist, params, &mut rng);
    let floor = traj_simp::min_points(test_db);

    // scores[task][method_row][ratio] = formatted cell
    let mut method_names: Vec<String> = baselines.iter().map(|b| b.name()).collect();
    method_names.push("RL4QDTS".to_string());
    let mut cells: Vec<Vec<Vec<String>>> =
        vec![vec![Vec::new(); method_names.len()]; TaskScores::NAMES.len()];

    for &ratio in ratios {
        let budget = ((test_db.total_points() as f64 * ratio) as usize).max(floor);
        for (mi, b) in baselines.iter().enumerate() {
            let s = score_method(*b, test_db, budget, &tasks).as_vec();
            for (ti, v) in s.iter().enumerate() {
                cells[ti][mi].push(format!("{v:.3}"));
            }
        }
        // RL4QDTS: repeated runs over start-sampling seeds, mean ± std.
        let mut per_task_runs: Vec<Vec<f64>> = vec![Vec::new(); TaskScores::NAMES.len()];
        for run_idx in 0..runs {
            let simplifier = Rl4QdtsSimplifier {
                model: model.clone(),
                state_queries: state_workload(
                    test_db,
                    dist,
                    query_count(scale),
                    seed ^ (run_idx as u64 + 1),
                ),
                seed: seed.wrapping_add(run_idx as u64 * 31),
                variant: PolicyVariant::FULL,
            };
            let s = score_method(&simplifier, test_db, budget, &tasks).as_vec();
            for (ti, v) in s.iter().enumerate() {
                per_task_runs[ti].push(*v);
            }
        }
        let last = method_names.len() - 1;
        for (ti, vals) in per_task_runs.iter().enumerate() {
            cells[ti][last].push(format!("{:.3}±{:.3}", mean(vals), std_dev(vals)));
        }
    }

    let mut header: Vec<String> = vec!["method".to_string()];
    header.extend(ratios.iter().map(|&r| crate::experiments::fmt_ratio(r)));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let per_task = TaskScores::NAMES
        .iter()
        .enumerate()
        .map(|(ti, task)| {
            let mut t = Table::new(&header_refs);
            for (mi, name) in method_names.iter().enumerate() {
                let mut row = vec![name.clone()];
                row.extend(cells[ti][mi].iter().cloned());
                t.row(row);
            }
            (task.to_string(), t)
        })
        .collect();

    ComparisonOutcome {
        distribution: dist.to_string(),
        per_task,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_comparison_produces_five_task_tables() {
        let spec = DatasetSpec::geolife(Scale::Smoke);
        let out = run(
            &spec,
            &[QueryDistribution::Data],
            &[0.1, 0.3],
            Scale::Smoke,
            11,
            2,
        );
        assert_eq!(out.len(), 1);
        let tables = &out[0].per_task;
        assert_eq!(tables.len(), 5);
        for (task, t) in tables {
            // 5 data-dist skyline baselines + RL4QDTS.
            assert_eq!(t.len(), 6, "{task}");
            // Two ratio columns + method column.
            assert!(t.rows()[0].len() == 3, "{task}");
        }
        // RL4QDTS row carries a ± std cell.
        let last = &tables[0].1.rows()[5];
        assert!(last[1].contains('±'), "{last:?}");
    }
}
