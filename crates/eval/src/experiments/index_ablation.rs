//! Index ablation (extension of the paper's §I future-work note):
//! octree vs. kd-tree-style median splits as the cube hierarchy.
//!
//! Trains one model per index kind under identical settings and compares
//! held-out range-query F1 and simplification wall time across budgets.

use crate::experiments::{query_count, ratio_sweep};
use crate::suite::{state_workload, Rl4QdtsSimplifier};
use crate::table::Table;
use crate::tasks::{build_tasks, eval_range, TaskParams};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rl4qdts::{train, IndexKind, PolicyVariant, Rl4QdtsConfig, TrainerConfig};
use traj_query::workload::RangeWorkloadSpec;
use traj_query::QueryDistribution;
use traj_simp::Simplifier;
use trajectory::gen::{generate, DatasetSpec, Scale};

const DIST: QueryDistribution = QueryDistribution::Data;

/// Runs the index ablation. One row per index kind and ratio:
/// `index, ratio, Range F1, simplify time (s)`.
pub fn run(scale: Scale, seed: u64) -> Table {
    let db = generate(&DatasetSpec::geolife(scale), seed);
    let (train_db, test_db) = {
        let n = (db.len() / 4).max(2);
        db.split_at(n)
    };
    let workload = RangeWorkloadSpec {
        count: query_count(scale),
        spatial_extent: 2_000.0,
        temporal_extent: 7.0 * 86_400.0,
        dist: DIST,
    };
    let trainer = TrainerConfig {
        num_dbs: 2,
        trajs_per_db: (train_db.len() / 2).clamp(4, 40),
        episodes_per_db: 2,
        ratio: 0.02,
        workload,
    };

    let mut rng = StdRng::seed_from_u64(seed ^ 0x1d);
    let params = TaskParams::for_scale(scale, query_count(scale));
    let tasks = build_tasks(&test_db, DIST, params, &mut rng);
    let ratios = ratio_sweep(scale);
    let floor = traj_simp::min_points(&test_db);

    let mut table = Table::new(&["index", "ratio", "Range F1", "Simplify time (s)"]);
    for kind in [IndexKind::Octree, IndexKind::MedianKdTree] {
        let config = Rl4QdtsConfig::scaled_to(&train_db)
            .with_delta(25)
            .with_index(kind);
        let (model, _) = train(&train_db, config, &trainer, seed);
        for &ratio in &ratios {
            let budget = ((test_db.total_points() as f64 * ratio) as usize).max(floor);
            let rl = Rl4QdtsSimplifier {
                model: model.clone(),
                state_queries: state_workload(&test_db, DIST, query_count(scale), seed ^ 2),
                seed,
                variant: PolicyVariant::FULL,
            };
            let started = std::time::Instant::now();
            let simp = rl.simplify(&test_db, budget);
            let elapsed = started.elapsed().as_secs_f64();
            let f1 = eval_range(&test_db, &simp.materialize(&test_db), &tasks);
            table.row(vec![
                kind.label().to_string(),
                crate::experiments::fmt_ratio(ratio),
                format!("{f1:.3}"),
                format!("{elapsed:.3}"),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compares_both_index_kinds() {
        let t = run(Scale::Smoke, 61);
        let kinds: std::collections::BTreeSet<&str> =
            t.rows().iter().map(|r| r[0].as_str()).collect();
        assert!(kinds.contains("octree"));
        assert!(kinds.contains("median-kd"));
        assert_eq!(t.len(), 2 * ratio_sweep(Scale::Smoke).len());
        for r in t.rows() {
            let f1: f64 = r[2].parse().unwrap();
            assert!((0.0..=1.0).contains(&f1), "{r:?}");
        }
    }
}
