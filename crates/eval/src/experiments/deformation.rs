//! Figure 7: deformation study.
//!
//! For each method and budget, run the range-query workload on the
//! *original* database, take the returned trajectories, and measure their
//! mean SED deformation between original and simplified form. A
//! query-aware method should deform the trajectories that queries actually
//! return less than error-driven methods do.

use crate::experiments::{query_count, ratio_sweep};
use crate::suite::{
    baseline_suite, paper_skyline_names, select_by_name, state_workload, train_rl4qdts,
    Rl4QdtsSimplifier,
};
use crate::table::Table;
use crate::tasks::{build_tasks, TaskParams};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rl4qdts::PolicyVariant;
use traj_query::QueryDistribution;
use traj_simp::Simplifier;
use trajectory::gen::{generate, DatasetSpec, Scale};
use trajectory::{ErrorMeasure, Simplification, TrajectoryDb};

/// Mean SED of the trajectories returned by the workload's range queries
/// on the original database, measured between their original and
/// simplified forms.
pub fn returned_trajectory_sed(
    db: &TrajectoryDb,
    simp: &Simplification,
    queries: &[trajectory::Cube],
) -> f64 {
    let mut returned: Vec<usize> = queries
        .iter()
        .flat_map(|q| traj_query::range_query(db, q))
        .collect();
    returned.sort_unstable();
    returned.dedup();
    if returned.is_empty() {
        return 0.0;
    }
    let total: f64 = returned
        .iter()
        .map(|&id| ErrorMeasure::Sed.trajectory_error(db.get(id), simp.kept(id)))
        .sum();
    total / returned.len() as f64
}

/// Runs the deformation study for one distribution; rows are methods,
/// columns compression ratios, cells mean SED (meters — lower is better).
pub fn run_one(scale: Scale, seed: u64, dist: QueryDistribution) -> Table {
    let db = generate(&DatasetSpec::geolife(scale), seed);
    let (train_db, test_db) = {
        let n = (db.len() / 4).max(2);
        db.split_at(n)
    };
    let suite = baseline_suite(&train_db, seed);
    let baselines = select_by_name(&suite, &paper_skyline_names(dist));
    let model = train_rl4qdts(&train_db, dist, query_count(scale), seed);

    let mut rng = StdRng::seed_from_u64(seed ^ 0xdef0);
    let params = TaskParams::for_scale(scale, query_count(scale));
    let tasks = build_tasks(&test_db, dist, params, &mut rng);
    let ratios = ratio_sweep(scale);
    let floor = traj_simp::min_points(&test_db);

    let mut header: Vec<String> = vec!["method".into()];
    header.extend(ratios.iter().map(|&r| crate::experiments::fmt_ratio(r)));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = Table::new(&header_refs);

    let rl4qdts = Rl4QdtsSimplifier {
        model,
        state_queries: state_workload(&test_db, dist, query_count(scale), seed ^ 3),
        seed,
        variant: PolicyVariant::FULL,
    };
    let mut methods: Vec<&dyn Simplifier> = baselines;
    methods.push(&rl4qdts);

    for method in methods {
        let mut row = vec![method.name()];
        for &ratio in &ratios {
            let budget = ((test_db.total_points() as f64 * ratio) as usize).max(floor);
            let simp = method.simplify(&test_db, budget);
            let sed = returned_trajectory_sed(&test_db, &simp, &tasks.range_queries);
            row.push(format!("{sed:.1}"));
        }
        table.row(row);
    }
    table
}

/// Runs both sub-figures (data and Gaussian distributions).
pub fn run(scale: Scale, seed: u64) -> Vec<(String, Table)> {
    [
        QueryDistribution::Data,
        QueryDistribution::Gaussian {
            mu: 0.5,
            sigma: 0.25,
        },
    ]
    .into_iter()
    .map(|d| (d.to_string(), run_one(scale, seed, d)))
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use trajectory::gen::generate;

    #[test]
    fn sed_decreases_with_more_budget() {
        let db = generate(&DatasetSpec::geolife(Scale::Smoke), 6);
        let mut rng = StdRng::seed_from_u64(2);
        let params = TaskParams::paper_scaled(8);
        let tasks = build_tasks(&db, QueryDistribution::Data, params, &mut rng);
        let endpoints = Simplification::most_simplified(&db);
        let full = Simplification::full(&db);
        let harsh = returned_trajectory_sed(&db, &endpoints, &tasks.range_queries);
        let none = returned_trajectory_sed(&db, &full, &tasks.range_queries);
        assert!(none < 1e-9);
        assert!(harsh > none);
    }

    #[test]
    fn produces_method_rows() {
        let t = run_one(Scale::Smoke, 7, QueryDistribution::Data);
        // 5 data-dist skyline baselines + RL4QDTS.
        assert_eq!(t.len(), 6);
    }
}
