//! Figure 3: skyline selection over the 25 baselines.
//!
//! For each query distribution (data / Gaussian / real), every baseline is
//! scored on the five query tasks at a fixed budget; the Pareto skyline is
//! reported. The paper uses this to pick per-distribution comparison sets
//! for Figures 4–6.

use crate::experiments::{chengdu_ratio_sweep, query_count, ratio_sweep, score_method};
use crate::skyline::{skyline, ScoredMethod};
use crate::suite::baseline_suite;
use crate::table::Table;
use crate::tasks::{build_tasks, TaskParams, TaskScores};
use rand::rngs::StdRng;
use rand::SeedableRng;
use traj_query::QueryDistribution;
use trajectory::gen::{generate, DatasetSpec, Scale};

/// The outcome for one distribution: the full score table plus the
/// skyline member names.
pub struct SkylineOutcome {
    /// Distribution label.
    pub distribution: String,
    /// Score table (25 rows × 5 task columns + skyline marker).
    pub table: Table,
    /// Names of the skyline members.
    pub skyline: Vec<String>,
}

/// Runs the skyline selection for the three distributions of Fig. 3.
pub fn run(scale: Scale, seed: u64) -> Vec<SkylineOutcome> {
    let dists = [
        QueryDistribution::Data,
        QueryDistribution::Gaussian {
            mu: 0.5,
            sigma: 0.25,
        },
        QueryDistribution::Real,
    ];
    dists.iter().map(|&d| run_one(scale, seed, d)).collect()
}

/// Skyline selection for one distribution. The real distribution uses the
/// Chengdu-like dataset (as in the paper); the others use Geolife-like.
pub fn run_one(scale: Scale, seed: u64, dist: QueryDistribution) -> SkylineOutcome {
    let is_real = matches!(dist, QueryDistribution::Real);
    let (db, anchor_ratio) = if is_real {
        (
            generate(&DatasetSpec::chengdu(scale), seed),
            chengdu_ratio_sweep(scale)[0],
        )
    } else {
        (
            generate(&DatasetSpec::geolife(scale), seed),
            ratio_sweep(scale)[0],
        )
    };
    let (train_db, test_db) = {
        let n = (db.len() / 4).max(2);
        db.split_at(n)
    };

    let suite = baseline_suite(&train_db, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xf00d);
    let params = TaskParams::for_scale(scale, query_count(scale));
    let tasks = build_tasks(&test_db, dist, params, &mut rng);
    let budget = ((test_db.total_points() as f64 * anchor_ratio) as usize)
        .max(traj_simp::min_points(&test_db));

    // The 25 baselines are independent: score them in parallel (the same
    // work-stealing helper the query engine's batch paths use).
    let scored: Vec<ScoredMethod> = traj_query::parallel::par_map(&suite, |method| {
        let s = score_method(method.as_ref(), &test_db, budget, &tasks);
        ScoredMethod {
            name: method.name(),
            scores: s.as_vec(),
        }
    });
    let sky = skyline(&scored);

    let mut header = vec!["method"];
    header.extend(TaskScores::NAMES);
    header.push("skyline");
    let mut table = Table::new(&header);
    for (i, m) in scored.iter().enumerate() {
        let mut row = vec![m.name.clone()];
        row.extend(m.scores.iter().map(|v| format!("{v:.3}")));
        row.push(if sky.contains(&i) {
            "*".into()
        } else {
            "".into()
        });
        table.row(row);
    }
    SkylineOutcome {
        distribution: dist.to_string(),
        table,
        skyline: sky.iter().map(|&i| scored[i].name.clone()).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_all_25_baselines_and_a_nonempty_skyline() {
        let out = run_one(Scale::Smoke, 3, QueryDistribution::Data);
        assert_eq!(out.table.len(), 25);
        assert!(!out.skyline.is_empty());
        assert!(out.skyline.len() <= 25);
    }
}
