//! Experiment 11: training cost.
//!
//! (a) training time vs. the number of training trajectories;
//! (b) effectiveness/time trade-off of the reward interval Δ.

use crate::experiments::{query_count, ratio_sweep};
use crate::suite::{state_workload, Rl4QdtsSimplifier};
use crate::table::Table;
use crate::tasks::{build_tasks, eval_range, TaskParams};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rl4qdts::{train, PolicyVariant, Rl4QdtsConfig, TrainerConfig};
use traj_query::workload::RangeWorkloadSpec;
use traj_query::QueryDistribution;
use traj_simp::Simplifier;
use trajectory::gen::{generate, DatasetSpec, Scale};

const DIST: QueryDistribution = QueryDistribution::Data;

fn workload(scale: Scale) -> RangeWorkloadSpec {
    RangeWorkloadSpec {
        count: query_count(scale),
        spatial_extent: 2_000.0,
        temporal_extent: 7.0 * 86_400.0,
        dist: DIST,
    }
}

/// (a) Training time and held-out range F1 vs. training-pool size.
pub fn run_pool_size(scale: Scale, seed: u64) -> Table {
    let db = generate(&DatasetSpec::geolife(scale), seed);
    let (train_pool, test_db) = {
        let n = db.len() * 3 / 4;
        db.split_at(n)
    };
    let sizes: Vec<usize> = match scale {
        Scale::Paper => vec![10, 50, 100, 200],
        Scale::Small => vec![8, 16, 32, 64],
        Scale::Smoke => vec![4, 8, 16],
    };
    let mut table = Table::new(&["# train trajs", "Train time (s)", "Transitions", "Range F1"]);
    for &n in &sizes {
        let config = Rl4QdtsConfig::scaled_to(&train_pool).with_delta(15);
        let trainer = TrainerConfig {
            num_dbs: 3,
            trajs_per_db: n,
            episodes_per_db: 3,
            ratio: 0.06,
            workload: workload(scale),
        };
        let (model, stats) = train(&train_pool, config, &trainer, seed);
        let f1 = held_out_f1(&model, &test_db, scale, seed);
        table.row(vec![
            n.to_string(),
            format!("{:.2}", stats.wall_seconds),
            stats.transitions.to_string(),
            format!("{f1:.3}"),
        ]);
    }
    table
}

/// (b) Effect of the reward interval Δ on training time and accuracy.
pub fn run_delta(scale: Scale, seed: u64) -> Table {
    let db = generate(&DatasetSpec::geolife(scale), seed);
    let (train_pool, test_db) = {
        let n = db.len() * 3 / 4;
        db.split_at(n)
    };
    let deltas: Vec<usize> = vec![10, 25, 50, 100];
    let mut table = Table::new(&["Δ", "Train time (s)", "Windows/episode", "Range F1"]);
    for &delta in &deltas {
        let config = Rl4QdtsConfig::scaled_to(&train_pool).with_delta(delta);
        let trainer = TrainerConfig {
            num_dbs: 3,
            trajs_per_db: 12,
            episodes_per_db: 3,
            ratio: 0.06,
            workload: workload(scale),
        };
        let (model, stats) = train(&train_pool, config, &trainer, seed);
        let f1 = held_out_f1(&model, &test_db, scale, seed);
        let windows_per_ep = if stats.episodes > 0 {
            stats.insertions as f64 / delta as f64 / stats.episodes as f64
        } else {
            0.0
        };
        table.row(vec![
            delta.to_string(),
            format!("{:.2}", stats.wall_seconds),
            format!("{windows_per_ep:.1}"),
            format!("{f1:.3}"),
        ]);
    }
    table
}

fn held_out_f1(
    model: &rl4qdts::Rl4Qdts,
    test_db: &trajectory::TrajectoryDb,
    scale: Scale,
    seed: u64,
) -> f64 {
    let ratio = ratio_sweep(scale)[0];
    let budget =
        ((test_db.total_points() as f64 * ratio) as usize).max(traj_simp::min_points(test_db));
    let rl = Rl4QdtsSimplifier {
        model: model.clone(),
        state_queries: state_workload(test_db, DIST, query_count(scale), seed ^ 21),
        seed,
        variant: PolicyVariant::FULL,
    };
    let simp = rl.simplify(test_db, budget).materialize(test_db);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x77);
    let tasks = build_tasks(
        test_db,
        DIST,
        TaskParams::for_scale(scale, query_count(scale)),
        &mut rng,
    );
    eval_range(test_db, &simp, &tasks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_size_sweep_reports_time_and_f1() {
        let t = run_pool_size(Scale::Smoke, 51);
        assert_eq!(t.len(), 3);
        for r in t.rows() {
            assert!(r[1].parse::<f64>().unwrap() >= 0.0);
            let f1: f64 = r[3].parse().unwrap();
            assert!((0.0..=1.0).contains(&f1));
        }
    }

    #[test]
    fn delta_sweep_covers_paper_values() {
        let t = run_delta(Scale::Smoke, 53);
        let deltas: Vec<&str> = t.rows().iter().map(|r| r[0].as_str()).collect();
        assert_eq!(deltas, vec!["10", "25", "50", "100"]);
    }
}
