//! Table I: dataset statistics.
//!
//! Generates the four synthetic datasets and prints their statistics next
//! to the paper's reference values, making the substitution (DESIGN.md §5)
//! auditable at a glance.

use crate::table::Table;
use trajectory::gen::{generate, DatasetSpec, Scale};
use trajectory::DatasetStats;

/// The paper's Table I reference values per dataset:
/// `(name, trajectories, points, pts/traj, sampling-rate description,
/// average step length)`.
pub const PAPER_REFERENCE: [(&str, &str, &str, &str, &str, &str); 4] = [
    (
        "geolife",
        "17,621",
        "24,876,978",
        "1,412",
        "1s ~ 5s",
        "9.96m",
    ),
    ("tdrive", "10,359", "17,740,902", "1,713", "177s", "623m"),
    ("chengdu", "179,756", "32,151,865", "178", "2s ~ 4s", "25m"),
    ("osm", "513,380", "2,913,478,785", "5,675", "53.5s", "180m"),
];

/// Generates all four datasets at `scale` and tabulates measured vs.
/// paper statistics.
pub fn run(scale: Scale, seed: u64) -> Table {
    let mut table = Table::new(&[
        "dataset",
        "M (ours)",
        "N (ours)",
        "pts/traj (ours)",
        "interval (ours)",
        "step (ours)",
        "M (paper)",
        "pts/traj (paper)",
        "interval (paper)",
        "step (paper)",
    ]);
    for (spec, reference) in DatasetSpec::all(scale).iter().zip(PAPER_REFERENCE) {
        let db = generate(spec, seed);
        let s = DatasetStats::compute(&db);
        table.row(vec![
            spec.name.to_string(),
            s.num_trajectories.to_string(),
            s.total_points.to_string(),
            format!("{:.0}", s.mean_points_per_traj),
            format!("{:.1}s", s.mean_sampling_interval),
            format!("{:.1}m", s.mean_segment_length),
            reference.1.to_string(),
            reference.3.to_string(),
            reference.4.to_string(),
            reference.5.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_four_rows() {
        let t = run(Scale::Smoke, 1);
        assert_eq!(t.len(), 4);
        assert!(t.render().contains("geolife"));
        assert!(t.render().contains("osm"));
    }

    #[test]
    fn measured_shape_tracks_paper_shape() {
        // Scale-invariant relations of Table I must hold in the synthetic
        // data: T-Drive samples an order of magnitude sparser than Geolife
        // and takes far longer steps; Chengdu samples densely.
        let t = run(Scale::Smoke, 2);
        let rows = t.rows();
        let interval = |i: usize| -> f64 { rows[i][4].trim_end_matches('s').parse().unwrap() };
        let step = |i: usize| -> f64 { rows[i][5].trim_end_matches('m').parse().unwrap() };
        assert!(
            interval(1) > 10.0 * interval(0),
            "tdrive sparser than geolife"
        );
        assert!(step(1) > 5.0 * step(0), "tdrive longer steps than geolife");
        assert!(interval(2) < 10.0, "chengdu samples densely");
        assert!(interval(3) > interval(0), "osm sparser than geolife");
    }
}
