//! Table II: ablation of Agent-Cube and Agent-Point.
//!
//! Four variants — full RL4QDTS, w/o Agent-Cube (random start cube handed
//! straight to Agent-Point), w/o Agent-Point (max-`v_s` insertion), and
//! w/o both — scored on range-query F1 (mean ± std over runs) with wall
//! time, on a Geolife-like database under the data distribution.

use crate::experiments::{query_count, ratio_sweep};
use crate::suite::{state_workload, train_rl4qdts, Rl4QdtsSimplifier};
use crate::table::{mean, std_dev, Table};
use crate::tasks::{build_tasks, eval_range, TaskParams};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rl4qdts::PolicyVariant;
use traj_query::QueryDistribution;
use traj_simp::Simplifier;
use trajectory::gen::{generate, DatasetSpec, Scale};

/// Runs the ablation. Returns a table with one row per variant:
/// `variant, range F1 (mean ± std), time (s)`.
pub fn run(scale: Scale, seed: u64, runs: usize) -> Table {
    let db = generate(&DatasetSpec::geolife(scale), seed);
    let (train_db, test_db) = {
        let n = (db.len() / 4).max(2);
        db.split_at(n)
    };
    let dist = QueryDistribution::Data;
    let model = train_rl4qdts(&train_db, dist, query_count(scale), seed);

    let mut rng = StdRng::seed_from_u64(seed ^ 0xab1a);
    let params = TaskParams::for_scale(scale, query_count(scale));
    let tasks = build_tasks(&test_db, dist, params, &mut rng);
    let ratio = ratio_sweep(scale)[0];
    let budget =
        ((test_db.total_points() as f64 * ratio) as usize).max(traj_simp::min_points(&test_db));

    let variants = [
        PolicyVariant::FULL,
        PolicyVariant::NO_CUBE,
        PolicyVariant::NO_POINT,
        PolicyVariant::NEITHER,
    ];
    let mut table = Table::new(&["variant", "Range Query F1", "Time (s)"]);
    for variant in variants {
        let mut f1s = Vec::with_capacity(runs);
        let started = std::time::Instant::now();
        for run_idx in 0..runs {
            let simplifier = Rl4QdtsSimplifier {
                model: model.clone(),
                state_queries: state_workload(
                    &test_db,
                    dist,
                    query_count(scale),
                    seed ^ (run_idx as u64 + 77),
                ),
                seed: seed.wrapping_add(run_idx as u64 * 131),
                variant,
            };
            let simp = simplifier.simplify(&test_db, budget);
            f1s.push(eval_range(&test_db, &simp.materialize(&test_db), &tasks));
        }
        let elapsed = started.elapsed().as_secs_f64() / runs as f64;
        table.row(vec![
            variant.label().to_string(),
            format!("{:.3} ± {:.3}", mean(&f1s), std_dev(&f1s)),
            format!("{elapsed:.2}"),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_four_variant_rows() {
        let t = run(Scale::Smoke, 5, 2);
        assert_eq!(t.len(), 4);
        let names: Vec<&str> = t.rows().iter().map(|r| r[0].as_str()).collect();
        assert_eq!(
            names,
            vec![
                "RL4QDTS",
                "w/o Agent-Cube",
                "w/o Agent-Point",
                "w/o Agent-Cube and Agent-Point"
            ]
        );
        // Every F1 cell parses as mean ± std within [0, 1].
        for r in t.rows() {
            let m: f64 = r[1].split('±').next().unwrap().trim().parse().unwrap();
            assert!((0.0..=1.0).contains(&m), "{}", r[1]);
        }
    }
}
