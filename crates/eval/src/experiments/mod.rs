//! One module per table/figure of the paper. Each exposes a `run`
//! function returning renderable [`crate::table::Table`]s so the binaries
//! stay thin and the experiments remain testable at smoke scale.

pub mod ablation;
pub mod comparison;
pub mod datasets;
pub mod deformation;
pub mod efficiency;
pub mod index_ablation;
pub mod params;
pub mod skyline_sel;
pub mod training;
pub mod transferability;

use crate::tasks::{evaluate, QueryTasks, TaskScores};
use traj_simp::Simplifier;
use trajectory::gen::Scale;
use trajectory::TrajectoryDb;

/// Compression-ratio sweep for Geolife/T-Drive-shaped figures
/// (paper: 0.25%–2%). Synthetic trajectories are shorter than the real
/// datasets' (Table I), so the endpoint floor `2/|T|` sits higher and the
/// sweep shifts upward at smaller scales — same shape, feasible budgets.
pub fn ratio_sweep(scale: Scale) -> Vec<f64> {
    match scale {
        Scale::Paper => vec![0.0025, 0.003, 0.0035, 0.004, 0.0045, 0.01, 0.02],
        Scale::Small => vec![0.02, 0.025, 0.03, 0.035, 0.045, 0.08, 0.15],
        Scale::Smoke => vec![0.05, 0.12, 0.25],
    }
}

/// Compression-ratio sweep for Chengdu-shaped figures (paper: 2%–20%;
/// Chengdu trajectories are short, so budgets are larger).
pub fn chengdu_ratio_sweep(scale: Scale) -> Vec<f64> {
    match scale {
        Scale::Paper => vec![0.02, 0.025, 0.03, 0.035, 0.04, 0.10, 0.20],
        Scale::Small => vec![0.03, 0.04, 0.05, 0.06, 0.08, 0.15, 0.25],
        Scale::Smoke => vec![0.05, 0.12, 0.25],
    }
}

/// Number of evaluation queries per scale (paper: 100).
pub fn query_count(scale: Scale) -> usize {
    match scale {
        Scale::Paper => 100,
        Scale::Small => 40,
        Scale::Smoke => 10,
    }
}

/// Runs one method at one budget and scores it on the full task suite.
pub fn score_method(
    method: &dyn Simplifier,
    db: &TrajectoryDb,
    budget: usize,
    tasks: &QueryTasks,
) -> TaskScores {
    let simp = method.simplify(db, budget);
    let materialized = simp.materialize(db);
    evaluate(db, &materialized, tasks)
}

/// Formats a ratio like the paper's x-axes ("0.25%").
pub fn fmt_ratio(r: f64) -> String {
    format!("{:.2}%", r * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweeps_are_ascending_and_nonempty() {
        for scale in [Scale::Smoke, Scale::Small, Scale::Paper] {
            for sweep in [ratio_sweep(scale), chengdu_ratio_sweep(scale)] {
                assert!(!sweep.is_empty());
                assert!(sweep.windows(2).all(|w| w[0] < w[1]));
                assert!(sweep.iter().all(|&r| r > 0.0 && r < 1.0));
            }
        }
    }

    #[test]
    fn ratio_formatting_matches_axis_labels() {
        assert_eq!(fmt_ratio(0.0025), "0.25%");
        assert_eq!(fmt_ratio(0.2), "20.00%");
    }
}
