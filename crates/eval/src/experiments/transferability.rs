//! Figure 9: transferability under query-distribution changes.
//!
//! RL4QDTS is trained once with Gaussian(μ=0.5, σ=0.25) range queries and
//! then evaluated on range workloads whose distribution drifts: Gaussian μ
//! ∈ [0.5, 0.9], Gaussian σ ∈ [0.25, 0.85], and Zipf a ∈ [4, 8]. The
//! baseline is Bottom-Up(E,SED), as in the paper.

use crate::experiments::{query_count, ratio_sweep};
use crate::suite::{state_workload, train_rl4qdts, Rl4QdtsSimplifier};
use crate::table::{mean, std_dev, Table};
use crate::tasks::{build_tasks, eval_range_with_engines, TaskParams};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rl4qdts::{PolicyVariant, Rl4Qdts};
use traj_query::{EngineConfig, QueryDistribution, QueryEngine};
use traj_simp::{Adaptation, BottomUp, Simplifier};
use trajectory::gen::{generate, DatasetSpec, Scale};
use trajectory::{ErrorMeasure, TrajectoryDb};

/// The distribution RL4QDTS is trained with in this experiment.
pub const TRAIN_DIST: QueryDistribution = QueryDistribution::Gaussian {
    mu: 0.5,
    sigma: 0.25,
};

/// One transferability series: the varied parameter values and the F1 of
/// baseline and RL4QDTS at each.
pub struct TransferOutcome {
    /// Sub-figure label ("Gaussian μ", "Gaussian σ", "Zipf a").
    pub label: String,
    /// The rendered table.
    pub table: Table,
}

/// Runs all three sub-figures.
pub fn run(scale: Scale, seed: u64, runs: usize) -> Vec<TransferOutcome> {
    let db = generate(&DatasetSpec::geolife(scale), seed);
    let (train_db, test_db) = {
        let n = (db.len() / 4).max(2);
        db.split_at(n)
    };
    let model = train_rl4qdts(&train_db, TRAIN_DIST, query_count(scale), seed);

    let mu_dists: Vec<(String, QueryDistribution)> = [0.5, 0.6, 0.7, 0.8, 0.9]
        .iter()
        .map(|&mu| {
            (
                format!("{mu}"),
                QueryDistribution::Gaussian { mu, sigma: 0.25 },
            )
        })
        .collect();
    let sigma_dists: Vec<(String, QueryDistribution)> = [0.25, 0.4, 0.55, 0.7, 0.85]
        .iter()
        .map(|&sigma| {
            (
                format!("{sigma}"),
                QueryDistribution::Gaussian { mu: 0.5, sigma },
            )
        })
        .collect();
    let zipf_dists: Vec<(String, QueryDistribution)> = [4.0, 5.0, 6.0, 7.0, 8.0]
        .iter()
        .map(|&a| (format!("{a}"), QueryDistribution::Zipf { a }))
        .collect();

    vec![
        series(
            scale,
            seed,
            runs,
            &test_db,
            &model,
            "Gaussian mu",
            &mu_dists,
        ),
        series(
            scale,
            seed,
            runs,
            &test_db,
            &model,
            "Gaussian sigma",
            &sigma_dists,
        ),
        series(scale, seed, runs, &test_db, &model, "Zipf a", &zipf_dists),
    ]
}

fn series(
    scale: Scale,
    seed: u64,
    runs: usize,
    test_db: &TrajectoryDb,
    model: &Rl4Qdts,
    label: &str,
    dists: &[(String, QueryDistribution)],
) -> TransferOutcome {
    let ratio = ratio_sweep(scale)[ratio_sweep(scale).len() / 2];
    let budget =
        ((test_db.total_points() as f64 * ratio) as usize).max(traj_simp::min_points(test_db));
    let baseline = BottomUp::new(ErrorMeasure::Sed, Adaptation::Each);
    let baseline_simp = baseline.simplify(test_db, budget).materialize(test_db);
    // One ground-truth engine (and one over the fixed baseline) for the
    // whole distribution sweep; only per-run simplifications re-index.
    let truth_engine = QueryEngine::over(test_db, EngineConfig::octree());
    let baseline_engine = QueryEngine::over(&baseline_simp, EngineConfig::octree());

    let mut header: Vec<String> = vec!["method".into()];
    header.extend(dists.iter().map(|(l, _)| l.clone()));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = Table::new(&header_refs);

    let mut baseline_row = vec![baseline.name()];
    let mut ours_row = vec!["RL4QDTS".to_string()];
    for (_, dist) in dists {
        // The *test* workload follows the drifted distribution…
        let mut rng = StdRng::seed_from_u64(seed ^ 0x7a);
        let params = TaskParams::for_scale(scale, query_count(scale));
        let tasks = build_tasks(test_db, *dist, params, &mut rng);
        baseline_row.push(format!(
            "{:.3}",
            eval_range_with_engines(&truth_engine, &baseline_engine, &tasks)
        ));

        // …while RL4QDTS's state workload stays the *training* distribution
        // (at deployment the drift is unknown — that is the point).
        let mut f1s = Vec::with_capacity(runs);
        for run_idx in 0..runs {
            let rl = Rl4QdtsSimplifier {
                model: model.clone(),
                state_queries: state_workload(
                    test_db,
                    TRAIN_DIST,
                    query_count(scale),
                    seed ^ (run_idx as u64 + 5),
                ),
                seed: seed.wrapping_add(run_idx as u64 * 17),
                variant: PolicyVariant::FULL,
            };
            let simp = rl.simplify(test_db, budget).materialize(test_db);
            let simp_engine = QueryEngine::over(&simp, EngineConfig::octree());
            f1s.push(eval_range_with_engines(&truth_engine, &simp_engine, &tasks));
        }
        ours_row.push(format!("{:.3}±{:.3}", mean(&f1s), std_dev(&f1s)));
    }
    table.row(baseline_row);
    table.row(ours_row);
    TransferOutcome {
        label: label.to_string(),
        table,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_three_series_with_five_points_each() {
        let out = run(Scale::Smoke, 31, 1);
        assert_eq!(out.len(), 3);
        for o in &out {
            assert_eq!(o.table.len(), 2, "{}: baseline + ours", o.label);
            assert_eq!(o.table.rows()[0].len(), 6, "{}: 5 x-values", o.label);
        }
    }
}
