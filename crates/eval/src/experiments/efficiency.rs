//! Figure 8: efficiency and scalability on the OSM-like dataset.
//!
//! (a) running time vs. data size `N` at fixed ratio; (b) running time vs.
//! budget `W` at fixed `N`. Times are wall-clock seconds of the
//! simplification itself (no quality evaluation).

use crate::experiments::query_count;
use crate::suite::{state_workload, train_rl4qdts, Rl4QdtsSimplifier};
use crate::table::Table;
use rl4qdts::PolicyVariant;
use traj_query::QueryDistribution;
use traj_simp::rlts::{RltsPlus, RltsTrainConfig};
use traj_simp::{Adaptation, BottomUp, Simplifier, SpanSearch, TopDown};
use trajectory::gen::{generate, DatasetSpec, Scale};
use trajectory::{ErrorMeasure, TrajectoryDb};

/// The method set timed in Fig. 8: the union of skyline members plus
/// RLTS+ and Span-Search, as in the paper's legend.
fn timed_baselines(train_db: &TrajectoryDb, seed: u64) -> Vec<Box<dyn Simplifier>> {
    let rlts_cfg = RltsTrainConfig {
        episodes: 10,
        ..RltsTrainConfig::default()
    };
    vec![
        Box::new(TopDown::new(ErrorMeasure::Ped, Adaptation::Each)),
        Box::new(TopDown::new(ErrorMeasure::Ped, Adaptation::Whole)),
        Box::new(BottomUp::new(ErrorMeasure::Ped, Adaptation::Whole)),
        Box::new(BottomUp::new(ErrorMeasure::Dad, Adaptation::Each)),
        Box::new(BottomUp::new(ErrorMeasure::Sed, Adaptation::Each)),
        Box::new(RltsPlus::train(
            ErrorMeasure::Sed,
            Adaptation::Each,
            3,
            train_db,
            &rlts_cfg,
            seed,
        )),
        Box::new(SpanSearch),
    ]
}

/// Trajectory-count sweep per scale (the paper sweeps 0.2–1.0 billion
/// points; the shape — who scales how — is what transfers).
fn size_sweep(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Paper => vec![100, 200, 400, 800],
        Scale::Small => vec![20, 40, 80, 160],
        Scale::Smoke => vec![4, 8],
    }
}

fn budget_sweep(scale: Scale) -> Vec<f64> {
    match scale {
        Scale::Paper => vec![0.0025, 0.005, 0.01, 0.02],
        Scale::Small => vec![0.02, 0.04, 0.08, 0.15],
        Scale::Smoke => vec![0.05, 0.25],
    }
}

fn time_one(method: &dyn Simplifier, db: &TrajectoryDb, budget: usize) -> f64 {
    let started = std::time::Instant::now();
    let simp = method.simplify(db, budget);
    let elapsed = started.elapsed().as_secs_f64();
    std::hint::black_box(simp.total_points());
    elapsed
}

/// Fig. 8(a): running time vs. data size at the base ratio.
pub fn run_varying_size(scale: Scale, seed: u64) -> Table {
    let sizes = size_sweep(scale);
    let spec = DatasetSpec::osm(scale);
    let train_db = generate(&spec.clone().with_trajectories(sizes[0].max(4)), seed ^ 1);
    let baselines = timed_baselines(&train_db, seed);
    let model = train_rl4qdts(&train_db, QueryDistribution::Data, query_count(scale), seed);

    let mut header: Vec<String> = vec!["method".into()];
    header.extend(sizes.iter().map(|m| format!("M={m}")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = Table::new(&header_refs);

    let mut rows: Vec<Vec<String>> = baselines
        .iter()
        .map(|b| vec![b.name()])
        .chain(std::iter::once(vec!["RL4QDTS".to_string()]))
        .collect();
    for &m in &sizes {
        let db = generate(&spec.clone().with_trajectories(m), seed);
        let ratio = budget_sweep(scale)[0];
        let budget = ((db.total_points() as f64 * ratio) as usize).max(traj_simp::min_points(&db));
        for (i, b) in baselines.iter().enumerate() {
            rows[i].push(format!("{:.3}s", time_one(b.as_ref(), &db, budget)));
        }
        let rl = Rl4QdtsSimplifier {
            model: model.clone(),
            state_queries: state_workload(&db, QueryDistribution::Data, query_count(scale), seed),
            seed,
            variant: PolicyVariant::FULL,
        };
        let last = rows.len() - 1;
        rows[last].push(format!("{:.3}s", time_one(&rl, &db, budget)));
    }
    for r in rows {
        table.row(r);
    }
    table
}

/// Fig. 8(b): running time vs. budget at fixed data size.
pub fn run_varying_budget(scale: Scale, seed: u64) -> Table {
    let spec = DatasetSpec::osm(scale);
    let m = size_sweep(scale)[size_sweep(scale).len() / 2];
    let db = generate(&spec.clone().with_trajectories(m), seed);
    let train_db = generate(&spec.with_trajectories((m / 2).max(4)), seed ^ 1);
    let baselines = timed_baselines(&train_db, seed);
    let model = train_rl4qdts(&train_db, QueryDistribution::Data, query_count(scale), seed);

    let ratios = budget_sweep(scale);
    let mut header: Vec<String> = vec!["method".into()];
    header.extend(ratios.iter().map(|&r| crate::experiments::fmt_ratio(r)));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = Table::new(&header_refs);

    let mut rows: Vec<Vec<String>> = baselines
        .iter()
        .map(|b| vec![b.name()])
        .chain(std::iter::once(vec!["RL4QDTS".to_string()]))
        .collect();
    for &ratio in &ratios {
        let budget = ((db.total_points() as f64 * ratio) as usize).max(traj_simp::min_points(&db));
        for (i, b) in baselines.iter().enumerate() {
            rows[i].push(format!("{:.3}s", time_one(b.as_ref(), &db, budget)));
        }
        let rl = Rl4QdtsSimplifier {
            model: model.clone(),
            state_queries: state_workload(&db, QueryDistribution::Data, query_count(scale), seed),
            seed,
            variant: PolicyVariant::FULL,
        };
        let last = rows.len() - 1;
        rows[last].push(format!("{:.3}s", time_one(&rl, &db, budget)));
    }
    for r in rows {
        table.row(r);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_sweep_table_has_all_methods() {
        let t = run_varying_size(Scale::Smoke, 21);
        assert_eq!(t.len(), 8, "7 baselines + RL4QDTS");
        for r in t.rows() {
            assert_eq!(r.len(), 1 + size_sweep(Scale::Smoke).len());
            for cell in &r[1..] {
                assert!(cell.ends_with('s'), "time cell: {cell}");
            }
        }
    }

    #[test]
    fn budget_sweep_table_has_all_methods() {
        let t = run_varying_budget(Scale::Smoke, 22);
        assert_eq!(t.len(), 8);
        assert_eq!(t.rows()[0].len(), 1 + budget_sweep(Scale::Smoke).len());
    }
}
