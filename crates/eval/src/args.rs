//! Minimal command-line parsing shared by all experiment binaries.
//!
//! Every binary accepts `--scale smoke|small|paper`, `--seed N`, and
//! `--runs N`; a tiny hand-rolled parser keeps the workspace free of a CLI
//! dependency.

use trajectory::gen::Scale;

/// Common experiment options.
#[derive(Debug, Clone, Copy)]
pub struct ExpArgs {
    /// Dataset/effort scale.
    pub scale: Scale,
    /// Base RNG seed.
    pub seed: u64,
    /// Number of repeated runs for mean ± std reporting (the paper uses
    /// 50; the default here is 3).
    pub runs: usize,
}

impl Default for ExpArgs {
    fn default() -> Self {
        Self {
            scale: Scale::Small,
            seed: 42,
            runs: 3,
        }
    }
}

impl ExpArgs {
    /// Parses `std::env::args()`; exits with a usage message on error.
    pub fn parse() -> Self {
        match Self::try_parse(std::env::args().skip(1)) {
            Ok(a) => a,
            Err(msg) => {
                eprintln!("error: {msg}");
                eprintln!("usage: <bin> [--scale smoke|small|paper] [--seed N] [--runs N]");
                std::process::exit(2);
            }
        }
    }

    /// Parses from an explicit iterator (testable).
    pub fn try_parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut out = Self::default();
        let mut it = args.into_iter();
        while let Some(flag) = it.next() {
            let mut value = || {
                it.next()
                    .ok_or_else(|| format!("flag {flag} expects a value"))
            };
            match flag.as_str() {
                "--scale" => out.scale = value()?.parse::<Scale>()?,
                "--seed" => {
                    out.seed = value()?.parse().map_err(|e| format!("--seed: {e}"))?;
                }
                "--runs" => {
                    out.runs = value()?.parse().map_err(|e| format!("--runs: {e}"))?;
                    if out.runs == 0 {
                        return Err("--runs must be ≥ 1".into());
                    }
                }
                other => return Err(format!("unknown flag: {other}")),
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &[&str]) -> Result<ExpArgs, String> {
        ExpArgs::try_parse(s.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_apply() {
        let a = parse(&[]).unwrap();
        assert_eq!(a.scale, Scale::Small);
        assert_eq!(a.seed, 42);
        assert_eq!(a.runs, 3);
    }

    #[test]
    fn all_flags_parse() {
        let a = parse(&["--scale", "smoke", "--seed", "7", "--runs", "5"]).unwrap();
        assert_eq!(a.scale, Scale::Smoke);
        assert_eq!(a.seed, 7);
        assert_eq!(a.runs, 5);
    }

    #[test]
    fn bad_input_is_rejected() {
        assert!(parse(&["--scale", "giant"]).is_err());
        assert!(parse(&["--seed"]).is_err());
        assert!(parse(&["--runs", "0"]).is_err());
        assert!(parse(&["--wat"]).is_err());
    }
}
