//! ASCII spatial heatmaps — the Fig. 9(d)–(g) distribution visualizations.
//!
//! The paper plots the spatial density of the drifted query workloads next
//! to the training distribution; this renders the same comparison in the
//! terminal.

use trajectory::Cube;

/// Renders the spatial density of query centers over `bounds` as an ASCII
/// grid (` .:-=+*#%@` from empty to dense), `cols × rows` cells.
pub fn render(queries: &[Cube], bounds: &Cube, cols: usize, rows: usize) -> String {
    assert!(cols > 0 && rows > 0);
    let mut counts = vec![0usize; cols * rows];
    let (ex, ey, _) = bounds.extents();
    if ex <= 0.0 || ey <= 0.0 {
        return String::new();
    }
    for q in queries {
        let (cx, cy, _) = q.center();
        let u = ((cx - bounds.x_min) / ex).clamp(0.0, 1.0);
        let v = ((cy - bounds.y_min) / ey).clamp(0.0, 1.0);
        let col = ((u * cols as f64) as usize).min(cols - 1);
        let row = ((v * rows as f64) as usize).min(rows - 1);
        counts[row * cols + col] += 1;
    }
    let max = counts.iter().copied().max().unwrap_or(0).max(1);
    const SHADES: &[u8] = b" .:-=+*#%@";
    let mut out = String::with_capacity((cols + 1) * rows);
    // Render top row (max y) first so the picture is map-oriented.
    for row in (0..rows).rev() {
        for col in 0..cols {
            let c = counts[row * cols + col];
            let shade = if c == 0 {
                0
            } else {
                1 + (c * (SHADES.len() - 2)) / max
            };
            out.push(SHADES[shade.min(SHADES.len() - 1)] as char);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> Cube {
        Cube::new(0.0, 100.0, 0.0, 100.0, 0.0, 1.0)
    }

    fn q(x: f64, y: f64) -> Cube {
        Cube::centered(x, y, 0.5, 1.0, 1.0, 0.1)
    }

    #[test]
    fn empty_workload_renders_blank_grid() {
        let s = render(&[], &unit(), 8, 4);
        assert_eq!(s.lines().count(), 4);
        assert!(s.lines().all(|l| l.chars().all(|c| c == ' ')));
    }

    #[test]
    fn density_maps_to_darker_shades() {
        // Ten queries in one corner, one in the other.
        let mut qs: Vec<Cube> = (0..10).map(|_| q(5.0, 5.0)).collect();
        qs.push(q(95.0, 95.0));
        let s = render(&qs, &unit(), 10, 10);
        let lines: Vec<&str> = s.lines().collect();
        // Bottom-left cell (last line, first char) is densest.
        let dense = lines[9].chars().next().unwrap();
        let sparse = lines[0].chars().last().unwrap();
        assert_eq!(dense, '@');
        assert!(sparse != ' ' && sparse != '@', "sparse cell: {sparse:?}");
    }

    #[test]
    fn orientation_puts_high_y_on_top() {
        let qs = vec![q(50.0, 95.0)];
        let s = render(&qs, &unit(), 5, 5);
        let first_line = s.lines().next().unwrap();
        assert!(
            first_line.chars().any(|c| c != ' '),
            "top row should hold the mark"
        );
    }

    #[test]
    fn out_of_bounds_centers_clamp() {
        let qs = vec![q(-50.0, 500.0)];
        let s = render(&qs, &unit(), 4, 4);
        // Clamps to top-left cell; must not panic.
        assert!(s.lines().next().unwrap().starts_with(|c| c != ' '));
    }
}
