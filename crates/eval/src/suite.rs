//! The method suite: all 25 baselines of §V-A plus RL4QDTS wrapped behind
//! the common [`Simplifier`] interface.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rl4qdts::{PolicyVariant, Rl4Qdts, Rl4QdtsConfig, TrainerConfig};
use traj_query::workload::{range_workload, QueryDistribution, RangeWorkloadSpec};
use traj_simp::rlts::{RltsPlus, RltsTrainConfig};
use traj_simp::{Adaptation, BottomUp, Simplifier, SpanSearch, TopDown};
use trajectory::{Cube, ErrorMeasure, Simplification, TrajectoryDb};

/// Builds the paper's 25 baselines: {Top-Down, Bottom-Up, RLTS+} × {SED,
/// PED, DAD, SAD} × {E, W} + Span-Search. RLTS+ policies are trained on
/// `train_db` (one policy per error measure, re-targeted for W).
pub fn baseline_suite(train_db: &TrajectoryDb, seed: u64) -> Vec<Box<dyn Simplifier>> {
    let mut suite: Vec<Box<dyn Simplifier>> = Vec::with_capacity(25);
    for m in ErrorMeasure::ALL {
        for a in [Adaptation::Each, Adaptation::Whole] {
            suite.push(Box::new(TopDown::new(m, a)));
        }
    }
    for m in ErrorMeasure::ALL {
        for a in [Adaptation::Each, Adaptation::Whole] {
            suite.push(Box::new(BottomUp::new(m, a)));
        }
    }
    let rlts_cfg = RltsTrainConfig {
        episodes: 20,
        ..RltsTrainConfig::default()
    };
    for m in ErrorMeasure::ALL {
        let trained = RltsPlus::train(m, Adaptation::Each, 3, train_db, &rlts_cfg, seed);
        suite.push(Box::new(trained.with_adaptation(Adaptation::Whole)));
        suite.push(Box::new(trained));
    }
    suite.push(Box::new(SpanSearch));
    suite
}

/// The subset of baselines the paper's Figures 4–6 plot (the union of the
/// per-distribution skylines reported in §V-B(1)), built by name.
pub fn paper_skyline_names(dist: QueryDistribution) -> Vec<&'static str> {
    match dist {
        QueryDistribution::Data => vec![
            "Top-Down(E,PED)",
            "Top-Down(W,PED)",
            "Bottom-Up(W,PED)",
            "Bottom-Up(E,DAD)",
            "Bottom-Up(E,SED)",
        ],
        QueryDistribution::Gaussian { .. } => vec![
            "Bottom-Up(E,SED)",
            "RLTS+(E,SED)",
            "Bottom-Up(E,PED)",
            "Top-Down(E,PED)",
        ],
        _ => vec!["Top-Down(W,PED)", "Top-Down(E,SAD)"],
    }
}

/// Selects suite members by their display names.
pub fn select_by_name<'a>(
    suite: &'a [Box<dyn Simplifier>],
    names: &[&str],
) -> Vec<&'a dyn Simplifier> {
    names
        .iter()
        .filter_map(|n| suite.iter().find(|s| s.name() == *n).map(|b| b.as_ref()))
        .collect()
}

/// RL4QDTS behind the [`Simplifier`] interface: carries the trained model,
/// the state-workload used for octree statistics, the run seed, and the
/// ablation variant.
pub struct Rl4QdtsSimplifier {
    /// The trained model.
    pub model: Rl4Qdts,
    /// The synthetic range workload defining octree `Q_B` statistics.
    pub state_queries: Vec<Cube>,
    /// Seed of the start-cube sampling (varied across repeated runs).
    pub seed: u64,
    /// Ablation variant (Table II); `FULL` for the main method.
    pub variant: PolicyVariant,
}

impl Simplifier for Rl4QdtsSimplifier {
    fn name(&self) -> String {
        self.variant.label().to_string()
    }

    fn simplify(&self, db: &TrajectoryDb, budget: usize) -> Simplification {
        self.model
            .simplify_variant(db, budget, &self.state_queries, self.seed, self.variant)
    }
}

/// Trains an RL4QDTS model for a dataset/distribution pair with
/// scale-appropriate settings. Returns the model; wrap it in
/// [`Rl4QdtsSimplifier`] per run.
pub fn train_rl4qdts(
    train_db: &TrajectoryDb,
    dist: QueryDistribution,
    num_queries: usize,
    seed: u64,
) -> Rl4Qdts {
    let config = Rl4QdtsConfig::scaled_to(train_db).with_delta(15);
    let workload = RangeWorkloadSpec {
        // Training rewards need enough queries to produce a dense signal
        // (the paper uses 100); evaluation counts are scaled separately.
        count: num_queries.max(60),
        spatial_extent: 1_000.0,
        temporal_extent: 2.0 * 86_400.0,
        dist,
    };
    let trainer = TrainerConfig {
        num_dbs: 6,
        trajs_per_db: (train_db.len() / 2).clamp(4, 60),
        episodes_per_db: 6,
        ratio: 0.03,
        workload,
    };
    let (model, _) = rl4qdts::train(train_db, config, &trainer, seed);
    model
}

/// Generates the state workload an [`Rl4QdtsSimplifier`] needs for a test
/// database.
pub fn state_workload(
    db: &TrajectoryDb,
    dist: QueryDistribution,
    count: usize,
    seed: u64,
) -> Vec<Cube> {
    // Same query shape as training (train_rl4qdts) so the inference-time
    // Q_B statistics match what the policies saw.
    let spec = RangeWorkloadSpec {
        count,
        spatial_extent: 1_000.0,
        temporal_extent: 2.0 * 86_400.0,
        dist,
    };
    let mut rng = StdRng::seed_from_u64(seed);
    range_workload(db, &spec, &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use trajectory::gen::{generate, DatasetSpec, Scale};

    #[test]
    fn suite_has_25_uniquely_named_members() {
        let db = generate(&DatasetSpec::geolife(Scale::Smoke), 3);
        let suite = baseline_suite(&db, 1);
        assert_eq!(suite.len(), 25);
        let mut names: Vec<String> = suite.iter().map(|s| s.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 25, "duplicate baseline names");
        assert!(names.iter().any(|n| n == "Span-Search"));
        assert!(names.iter().any(|n| n == "RLTS+(W,SAD)"));
    }

    #[test]
    fn paper_skylines_resolve_to_suite_members() {
        let db = generate(&DatasetSpec::geolife(Scale::Smoke), 5);
        let suite = baseline_suite(&db, 2);
        for dist in [
            QueryDistribution::Data,
            QueryDistribution::Gaussian {
                mu: 0.5,
                sigma: 0.25,
            },
            QueryDistribution::Real,
        ] {
            let names = paper_skyline_names(dist);
            let picked = select_by_name(&suite, &names);
            assert_eq!(picked.len(), names.len(), "{dist}: missing members");
        }
    }

    #[test]
    fn every_baseline_respects_budgets() {
        let db = generate(&DatasetSpec::geolife(Scale::Smoke), 7);
        let suite = baseline_suite(&db, 3);
        let budget = db.total_points() / 10;
        let floor = traj_simp::min_points(&db);
        for s in &suite {
            let simp = s.simplify(&db, budget);
            assert!(
                simp.total_points() <= budget.max(floor),
                "{} overshot: {} > {}",
                s.name(),
                simp.total_points(),
                budget.max(floor)
            );
        }
    }
}
