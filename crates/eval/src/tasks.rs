//! The five query tasks of the evaluation (§V-A) and the F1 pipeline that
//! scores a simplified database against the original.

use rand::rngs::StdRng;
use traj_query::knn::{Dissimilarity, KnnQuery};
use traj_query::similarity::SimilarityQuery;
use traj_query::traclus::{traclus, TraclusParams};
use traj_query::workload::{
    range_workload, traj_query_workload, QueryDistribution, RangeWorkloadSpec,
};
use traj_query::{f1_pairs, f1_sets, mean_f1, EngineConfig, F1Score, QueryEngine};
use trajectory::{AsColumns, Cube, Trajectory, TrajectoryDb};

/// Parameters of the evaluation workloads, defaulting to the paper's
/// setup: range 2 km × 2 km × 7 days, kNN k = 3 over 7-day windows with
/// EDR ε = 2 km, similarity δ = 5 km, TRACLUS clustering.
#[derive(Debug, Clone, Copy)]
pub struct TaskParams {
    /// Range queries per evaluation (paper: 100).
    pub num_range: usize,
    /// kNN queries per evaluation.
    pub num_knn: usize,
    /// Similarity queries per evaluation.
    pub num_sim: usize,
    /// Range query spatial side length (paper: 2 km).
    pub spatial_extent: f64,
    /// Range query temporal window (paper: 7 days).
    pub temporal_extent: f64,
    /// kNN `k` (paper: 3).
    pub knn_k: usize,
    /// kNN / similarity time window length (paper: 7 days).
    pub window: f64,
    /// EDR matching tolerance (paper: 2 km).
    pub edr_eps: f64,
    /// Similarity distance threshold δ (paper: 5 km).
    pub sim_delta: f64,
    /// Similarity synchronization step (seconds).
    pub sim_step: f64,
    /// At most this many trajectories participate in clustering
    /// (TRACLUS's DBSCAN is quadratic in segments; the cap keeps the
    /// evaluation tractable — applied identically to both databases).
    pub cluster_cap: usize,
    /// TRACLUS parameters.
    pub traclus: TraclusParams,
}

impl TaskParams {
    /// The paper's parameters with workload sizes scaled by `queries`.
    pub fn paper_scaled(queries: usize) -> Self {
        Self {
            num_range: queries,
            num_knn: (queries / 5).max(3),
            num_sim: (queries / 5).max(3),
            spatial_extent: 2_000.0,
            temporal_extent: 7.0 * 86_400.0,
            knn_k: 3,
            window: 7.0 * 86_400.0,
            edr_eps: 2_000.0,
            sim_delta: 5_000.0,
            sim_step: 600.0,
            cluster_cap: 40,
            traclus: TraclusParams::default(),
        }
    }

    /// Scale-aware parameters: the paper's datasets span months to years,
    /// so a 7-day window is selective there; the synthetic horizon is 7
    /// days, so sub-paper scales shrink the windows and thresholds
    /// proportionally to keep queries equally selective (same *shape* of
    /// difficulty, feasible runtime).
    pub fn for_scale(scale: trajectory::gen::Scale, queries: usize) -> Self {
        use trajectory::gen::Scale;
        let mut p = Self::paper_scaled(queries);
        match scale {
            Scale::Paper => {}
            Scale::Small => {
                // Synthetic trajectories last minutes within a 7-day
                // horizon: range windows shrink to stay selective; kNN and
                // similarity windows stay at 7 days so whole trajectories
                // compete (their durations already bound the comparison).
                // Spatial extents shrink below the kept-point spacing the
                // ratio sweep induces, so range queries can actually miss.
                p.spatial_extent = 700.0;
                p.temporal_extent = 48.0 * 3_600.0;
                p.edr_eps = 1_000.0;
                p.sim_delta = 2_500.0;
                p.sim_step = 300.0;
                p.cluster_cap = 30;
            }
            Scale::Smoke => {
                p.spatial_extent = 400.0;
                p.temporal_extent = 24.0 * 3_600.0;
                p.edr_eps = 500.0;
                p.sim_delta = 1_500.0;
                p.sim_step = 300.0;
                p.cluster_cap = 16;
            }
        }
        p
    }
}

/// A concrete, reusable query workload across all five tasks. Built once
/// per experiment configuration so every method is scored on identical
/// queries.
#[derive(Debug, Clone)]
pub struct QueryTasks {
    /// The range queries.
    pub range_queries: Vec<Cube>,
    /// kNN query trajectories (cloned from the original database — queries
    /// are external inputs and are never simplified) with time windows.
    pub knn_queries: Vec<(Trajectory, f64, f64)>,
    /// Similarity query trajectories with time windows.
    pub sim_queries: Vec<(Trajectory, f64, f64)>,
    /// The parameters the workload was built with.
    pub params: TaskParams,
}

/// Builds the evaluation workload over `db` with query centers following
/// `dist`.
pub fn build_tasks(
    db: &TrajectoryDb,
    dist: QueryDistribution,
    params: TaskParams,
    rng: &mut StdRng,
) -> QueryTasks {
    let spec = RangeWorkloadSpec {
        count: params.num_range,
        spatial_extent: params.spatial_extent,
        temporal_extent: params.temporal_extent,
        dist,
    };
    let range_queries = range_workload(db, &spec, rng);
    let knn_specs = traj_query_workload(db, params.num_knn, params.window, rng);
    let knn_queries = knn_specs
        .iter()
        .map(|s| (db.get(s.query).clone(), s.ts, s.te))
        .collect();
    let sim_specs = traj_query_workload(db, params.num_sim, params.window, rng);
    let sim_queries = sim_specs
        .iter()
        .map(|s| (db.get(s.query).clone(), s.ts, s.te))
        .collect();
    QueryTasks {
        range_queries,
        knn_queries,
        sim_queries,
        params,
    }
}

/// Mean F1 per task: the five series every comparison figure plots.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskScores {
    /// Range query F1.
    pub range: f64,
    /// kNN (EDR) F1.
    pub knn_edr: f64,
    /// kNN (t2vec) F1.
    pub knn_t2vec: f64,
    /// Similarity query F1.
    pub similarity: f64,
    /// Clustering pair-F1.
    pub clustering: f64,
}

impl TaskScores {
    /// Task names in figure order.
    pub const NAMES: [&'static str; 5] = [
        "Range",
        "kNN(EDR)",
        "kNN(t2vec)",
        "Similarity",
        "Clustering",
    ];

    /// Scores in the same order as [`TaskScores::NAMES`].
    pub fn as_vec(&self) -> Vec<f64> {
        vec![
            self.range,
            self.knn_edr,
            self.knn_t2vec,
            self.similarity,
            self.clustering,
        ]
    }
}

/// Scores `simplified` against `original` on the full workload. Builds one
/// octree-backed [`QueryEngine`] per database and executes every task
/// through it (index pruning + data parallelism); see
/// [`evaluate_with_engines`] when engines are already at hand.
pub fn evaluate(
    original: &TrajectoryDb,
    simplified: &TrajectoryDb,
    tasks: &QueryTasks,
) -> TaskScores {
    let orig = QueryEngine::over(original, EngineConfig::octree());
    let simp = QueryEngine::over(simplified, EngineConfig::octree());
    evaluate_with_engines(&orig, &simp, tasks)
}

/// [`evaluate`] against pre-built engines, amortizing index construction
/// across repeated scorings of the same databases.
pub fn evaluate_with_engines(
    original: &QueryEngine<'_>,
    simplified: &QueryEngine<'_>,
    tasks: &QueryTasks,
) -> TaskScores {
    TaskScores {
        range: eval_range_with_engines(original, simplified, tasks),
        knn_edr: eval_knn(
            original,
            simplified,
            tasks,
            Dissimilarity::Edr {
                eps: tasks.params.edr_eps,
            },
        ),
        knn_t2vec: eval_knn(original, simplified, tasks, Dissimilarity::t2vec_default()),
        similarity: eval_similarity(original, simplified, tasks),
        clustering: eval_clustering(original.store(), simplified.store(), tasks),
    }
}

/// Range-query-only score (used by training-adjacent experiments where the
/// full pipeline would dominate runtime).
pub fn eval_range(original: &TrajectoryDb, simplified: &TrajectoryDb, tasks: &QueryTasks) -> f64 {
    let orig = QueryEngine::over(original, EngineConfig::octree());
    let simp = QueryEngine::over(simplified, EngineConfig::octree());
    eval_range_with_engines(&orig, &simp, tasks)
}

/// [`eval_range`] against pre-built engines. Sweep loops that score many
/// simplifications of one original database should build the ground-truth
/// engine once and call this, instead of paying the index build per call.
pub fn eval_range_with_engines(
    original: &QueryEngine<'_>,
    simplified: &QueryEngine<'_>,
    tasks: &QueryTasks,
) -> f64 {
    let truth = original.range_batch(&tasks.range_queries);
    let results = simplified.range_batch(&tasks.range_queries);
    let scores: Vec<F1Score> = truth
        .iter()
        .zip(&results)
        .map(|(t, r)| f1_sets(t, r))
        .collect();
    mean_f1(&scores)
}

fn eval_knn(
    original: &QueryEngine<'_>,
    simplified: &QueryEngine<'_>,
    tasks: &QueryTasks,
    measure: Dissimilarity,
) -> f64 {
    let queries: Vec<KnnQuery> = tasks
        .knn_queries
        .iter()
        .map(|(q, ts, te)| KnnQuery {
            query: q.clone(),
            ts: *ts,
            te: *te,
            k: tasks.params.knn_k,
            measure,
        })
        .collect();
    let truth = original.knn_batch(&queries);
    let results = simplified.knn_batch(&queries);
    let scores: Vec<F1Score> = truth
        .iter()
        .zip(&results)
        .map(|(t, r)| f1_sets(t, r))
        .collect();
    mean_f1(&scores)
}

fn eval_similarity(
    original: &QueryEngine<'_>,
    simplified: &QueryEngine<'_>,
    tasks: &QueryTasks,
) -> f64 {
    let queries: Vec<SimilarityQuery> = tasks
        .sim_queries
        .iter()
        .map(|(q, ts, te)| SimilarityQuery {
            query: q.clone(),
            ts: *ts,
            te: *te,
            delta: tasks.params.sim_delta,
            step: tasks.params.sim_step,
        })
        .collect();
    let truth = original.similarity_batch(&queries);
    let results = simplified.similarity_batch(&queries);
    let scores: Vec<F1Score> = truth
        .iter()
        .zip(&results)
        .map(|(t, r)| f1_sets(t, r))
        .collect();
    mean_f1(&scores)
}

fn eval_clustering<S: AsColumns + ?Sized>(original: &S, simplified: &S, tasks: &QueryTasks) -> f64 {
    let cap = tasks.params.cluster_cap;
    // TRACLUS consumes AoS trajectories; materialize only the capped head.
    let head = |store: &S| -> TrajectoryDb {
        store.views().take(cap).map(|v| v.to_trajectory()).collect()
    };
    let truth = traclus(&head(original), &tasks.params.traclus).co_clustered_pairs();
    let result = traclus(&head(simplified), &tasks.params.traclus).co_clustered_pairs();
    f1_pairs(&truth, &result).f1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use trajectory::gen::{generate, DatasetSpec, Scale};
    use trajectory::Simplification;

    fn setup() -> (TrajectoryDb, QueryTasks) {
        let db = generate(&DatasetSpec::geolife(Scale::Smoke), 53);
        let mut rng = StdRng::seed_from_u64(1);
        let params = TaskParams::paper_scaled(10);
        let tasks = build_tasks(&db, QueryDistribution::Data, params, &mut rng);
        (db, tasks)
    }

    #[test]
    fn identity_simplification_scores_one_everywhere() {
        let (db, tasks) = setup();
        let s = evaluate(&db, &db, &tasks);
        for (name, v) in TaskScores::NAMES.iter().zip(s.as_vec()) {
            assert!((v - 1.0).abs() < 1e-9, "{name} = {v}");
        }
    }

    #[test]
    fn harsher_simplification_scores_lower_on_range() {
        let (db, tasks) = setup();
        let endpoints = Simplification::most_simplified(&db).materialize(&db);
        let mild = {
            let mut s = Simplification::most_simplified(&db);
            // Keep every 4th point.
            for (id, t) in db.iter() {
                for idx in (0..t.len() as u32).step_by(4) {
                    s.insert(id, idx);
                }
            }
            s.materialize(&db)
        };
        let harsh = eval_range(&db, &endpoints, &tasks);
        let soft = eval_range(&db, &mild, &tasks);
        assert!(soft >= harsh, "mild {soft} >= harsh {harsh}");
        assert!(
            harsh < 1.0,
            "endpoint-only cannot be perfect on data-centered queries"
        );
    }

    #[test]
    fn task_workloads_have_requested_sizes() {
        let (_, tasks) = setup();
        assert_eq!(tasks.range_queries.len(), 10);
        assert_eq!(
            tasks.knn_queries.len(),
            TaskParams::paper_scaled(10).num_knn
        );
        assert_eq!(
            tasks.sim_queries.len(),
            TaskParams::paper_scaled(10).num_sim
        );
    }

    #[test]
    fn scores_vector_matches_names() {
        let s = TaskScores {
            range: 0.1,
            knn_edr: 0.2,
            knn_t2vec: 0.3,
            similarity: 0.4,
            clustering: 0.5,
        };
        assert_eq!(s.as_vec(), vec![0.1, 0.2, 0.3, 0.4, 0.5]);
        assert_eq!(TaskScores::NAMES.len(), 5);
    }
}
