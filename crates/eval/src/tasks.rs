//! The five query tasks of the evaluation (§V-A) and the F1 pipeline that
//! scores a simplified database against the original.
//!
//! Scoring is written against the [`QueryExecutor`] façade, so the same
//! pipeline evaluates a single-store engine, a sharded fan-out engine, or
//! an opened [`traj_query::TrajDb`] — and the whole mixed workload
//! (range + kNN(EDR) + kNN(t2vec) + similarity, the shape of the paper's
//! Eq. 10 evaluation) executes as **one** heterogeneous [`QueryBatch`]
//! pass per database instead of four serial per-kind batches.

use rand::rngs::StdRng;
use traj_query::knn::{Dissimilarity, KnnQuery};
use traj_query::similarity::SimilarityQuery;
use traj_query::traclus::{traclus, TraclusParams};
use traj_query::workload::{
    range_workload, traj_query_workload, QueryDistribution, RangeWorkloadSpec,
};
use traj_query::{
    f1_pairs, f1_sets, mean_f1, EngineConfig, F1Score, QueryBatch, QueryEngine, QueryExecutor,
    QueryResult,
};
use trajectory::{Cube, Trajectory, TrajectoryDb};

/// Parameters of the evaluation workloads, defaulting to the paper's
/// setup: range 2 km × 2 km × 7 days, kNN k = 3 over 7-day windows with
/// EDR ε = 2 km, similarity δ = 5 km, TRACLUS clustering.
#[derive(Debug, Clone, Copy)]
pub struct TaskParams {
    /// Range queries per evaluation (paper: 100).
    pub num_range: usize,
    /// kNN queries per evaluation.
    pub num_knn: usize,
    /// Similarity queries per evaluation.
    pub num_sim: usize,
    /// Range query spatial side length (paper: 2 km).
    pub spatial_extent: f64,
    /// Range query temporal window (paper: 7 days).
    pub temporal_extent: f64,
    /// kNN `k` (paper: 3).
    pub knn_k: usize,
    /// kNN / similarity time window length (paper: 7 days).
    pub window: f64,
    /// EDR matching tolerance (paper: 2 km).
    pub edr_eps: f64,
    /// Similarity distance threshold δ (paper: 5 km).
    pub sim_delta: f64,
    /// Similarity synchronization step (seconds).
    pub sim_step: f64,
    /// At most this many trajectories participate in clustering
    /// (TRACLUS's DBSCAN is quadratic in segments; the cap keeps the
    /// evaluation tractable — applied identically to both databases).
    pub cluster_cap: usize,
    /// TRACLUS parameters.
    pub traclus: TraclusParams,
}

impl TaskParams {
    /// The paper's parameters with workload sizes scaled by `queries`.
    pub fn paper_scaled(queries: usize) -> Self {
        Self {
            num_range: queries,
            num_knn: (queries / 5).max(3),
            num_sim: (queries / 5).max(3),
            spatial_extent: 2_000.0,
            temporal_extent: 7.0 * 86_400.0,
            knn_k: 3,
            window: 7.0 * 86_400.0,
            edr_eps: 2_000.0,
            sim_delta: 5_000.0,
            sim_step: 600.0,
            cluster_cap: 40,
            traclus: TraclusParams::default(),
        }
    }

    /// Scale-aware parameters: the paper's datasets span months to years,
    /// so a 7-day window is selective there; the synthetic horizon is 7
    /// days, so sub-paper scales shrink the windows and thresholds
    /// proportionally to keep queries equally selective (same *shape* of
    /// difficulty, feasible runtime).
    pub fn for_scale(scale: trajectory::gen::Scale, queries: usize) -> Self {
        use trajectory::gen::Scale;
        let mut p = Self::paper_scaled(queries);
        match scale {
            Scale::Paper => {}
            Scale::Small => {
                // Synthetic trajectories last minutes within a 7-day
                // horizon: range windows shrink to stay selective; kNN and
                // similarity windows stay at 7 days so whole trajectories
                // compete (their durations already bound the comparison).
                // Spatial extents shrink below the kept-point spacing the
                // ratio sweep induces, so range queries can actually miss.
                p.spatial_extent = 700.0;
                p.temporal_extent = 48.0 * 3_600.0;
                p.edr_eps = 1_000.0;
                p.sim_delta = 2_500.0;
                p.sim_step = 300.0;
                p.cluster_cap = 30;
            }
            Scale::Smoke => {
                p.spatial_extent = 400.0;
                p.temporal_extent = 24.0 * 3_600.0;
                p.edr_eps = 500.0;
                p.sim_delta = 1_500.0;
                p.sim_step = 300.0;
                p.cluster_cap = 16;
            }
        }
        p
    }
}

/// A concrete, reusable query workload across all five tasks. Built once
/// per experiment configuration so every method is scored on identical
/// queries.
#[derive(Debug, Clone)]
pub struct QueryTasks {
    /// The range queries.
    pub range_queries: Vec<Cube>,
    /// kNN query trajectories (cloned from the original database — queries
    /// are external inputs and are never simplified) with time windows.
    pub knn_queries: Vec<(Trajectory, f64, f64)>,
    /// Similarity query trajectories with time windows.
    pub sim_queries: Vec<(Trajectory, f64, f64)>,
    /// The parameters the workload was built with.
    pub params: TaskParams,
}

/// Builds the evaluation workload over `db` with query centers following
/// `dist`.
pub fn build_tasks(
    db: &TrajectoryDb,
    dist: QueryDistribution,
    params: TaskParams,
    rng: &mut StdRng,
) -> QueryTasks {
    let spec = RangeWorkloadSpec {
        count: params.num_range,
        spatial_extent: params.spatial_extent,
        temporal_extent: params.temporal_extent,
        dist,
    };
    let range_queries = range_workload(db, &spec, rng);
    let knn_specs = traj_query_workload(db, params.num_knn, params.window, rng);
    let knn_queries = knn_specs
        .iter()
        .map(|s| (db.get(s.query).clone(), s.ts, s.te))
        .collect();
    let sim_specs = traj_query_workload(db, params.num_sim, params.window, rng);
    let sim_queries = sim_specs
        .iter()
        .map(|s| (db.get(s.query).clone(), s.ts, s.te))
        .collect();
    QueryTasks {
        range_queries,
        knn_queries,
        sim_queries,
        params,
    }
}

impl QueryTasks {
    /// The kNN queries instantiated with `measure`.
    fn knn_with(&self, measure: Dissimilarity) -> impl Iterator<Item = KnnQuery> + '_ {
        self.knn_queries.iter().map(move |(q, ts, te)| KnnQuery {
            query: q.clone(),
            ts: *ts,
            te: *te,
            k: self.params.knn_k,
            measure,
        })
    }

    /// The similarity queries as typed [`SimilarityQuery`]s.
    fn sim_typed(&self) -> impl Iterator<Item = SimilarityQuery> + '_ {
        self.sim_queries.iter().map(|(q, ts, te)| SimilarityQuery {
            query: q.clone(),
            ts: *ts,
            te: *te,
            delta: self.params.sim_delta,
            step: self.params.sim_step,
        })
    }

    /// Plans the whole workload as one heterogeneous [`QueryBatch`], in
    /// task order: ranges, kNN(EDR), kNN(t2vec), similarities. The
    /// per-task sections are recovered positionally after execution.
    #[must_use]
    pub fn to_batch(&self) -> QueryBatch {
        let mut batch = QueryBatch::new();
        for q in &self.range_queries {
            batch.push_range(*q);
        }
        for q in self.knn_with(Dissimilarity::Edr {
            eps: self.params.edr_eps,
        }) {
            batch.push_knn(q);
        }
        for q in self.knn_with(Dissimilarity::t2vec_default()) {
            batch.push_knn(q);
        }
        for q in self.sim_typed() {
            batch.push_similarity(q);
        }
        batch
    }

    /// Splits a [`QueryTasks::to_batch`] result vector back into the four
    /// per-task sections, in plan order.
    fn split_results<'r>(&self, results: &'r [QueryResult]) -> [&'r [QueryResult]; 4] {
        let r = self.range_queries.len();
        let k = self.knn_queries.len();
        let s = self.sim_queries.len();
        assert_eq!(results.len(), r + 2 * k + s, "batch/task shape mismatch");
        [
            &results[..r],
            &results[r..r + k],
            &results[r + k..r + 2 * k],
            &results[r + 2 * k..],
        ]
    }
}

/// Mean F1 per task: the five series every comparison figure plots.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskScores {
    /// Range query F1.
    pub range: f64,
    /// kNN (EDR) F1.
    pub knn_edr: f64,
    /// kNN (t2vec) F1.
    pub knn_t2vec: f64,
    /// Similarity query F1.
    pub similarity: f64,
    /// Clustering pair-F1.
    pub clustering: f64,
}

impl TaskScores {
    /// Task names in figure order.
    pub const NAMES: [&'static str; 5] = [
        "Range",
        "kNN(EDR)",
        "kNN(t2vec)",
        "Similarity",
        "Clustering",
    ];

    /// Scores in the same order as [`TaskScores::NAMES`].
    pub fn as_vec(&self) -> Vec<f64> {
        vec![
            self.range,
            self.knn_edr,
            self.knn_t2vec,
            self.similarity,
            self.clustering,
        ]
    }
}

/// Scores `simplified` against `original` on the full workload. Builds one
/// octree-backed [`QueryEngine`] per database and executes every task
/// through it (index pruning + data parallelism); see
/// [`evaluate_with_engines`] when executors are already at hand.
pub fn evaluate(
    original: &TrajectoryDb,
    simplified: &TrajectoryDb,
    tasks: &QueryTasks,
) -> TaskScores {
    let orig = QueryEngine::over(original, EngineConfig::octree());
    let simp = QueryEngine::over(simplified, EngineConfig::octree());
    evaluate_with_engines(&orig, &simp, tasks)
}

/// [`evaluate`] against pre-built [`QueryExecutor`]s (a [`QueryEngine`],
/// a sharded engine, or an opened [`traj_query::TrajDb`] — any layout),
/// amortizing index construction across repeated scorings of the same
/// databases.
///
/// The four query tasks run as one heterogeneous [`QueryBatch`] per
/// database: a single data-parallel pass whose work-stealing scheduler
/// overlaps cheap range queries with expensive kNN dynamic programs,
/// instead of four serial per-kind batches.
pub fn evaluate_with_engines<O, S>(original: &O, simplified: &S, tasks: &QueryTasks) -> TaskScores
where
    O: QueryExecutor + ?Sized,
    S: QueryExecutor + ?Sized,
{
    let batch = tasks.to_batch();
    let truth = original.execute_batch(&batch);
    let results = simplified.execute_batch(&batch);
    let truth = tasks.split_results(&truth);
    let results = tasks.split_results(&results);
    TaskScores {
        range: mean_f1_section(truth[0], results[0]),
        knn_edr: mean_f1_section(truth[1], results[1]),
        knn_t2vec: mean_f1_section(truth[2], results[2]),
        similarity: mean_f1_section(truth[3], results[3]),
        clustering: eval_clustering(original, simplified, tasks),
    }
}

/// Range-query-only score (used by training-adjacent experiments where the
/// full pipeline would dominate runtime).
pub fn eval_range(original: &TrajectoryDb, simplified: &TrajectoryDb, tasks: &QueryTasks) -> f64 {
    let orig = QueryEngine::over(original, EngineConfig::octree());
    let simp = QueryEngine::over(simplified, EngineConfig::octree());
    eval_range_with_engines(&orig, &simp, tasks)
}

/// [`eval_range`] against pre-built executors. Sweep loops that score many
/// simplifications of one original database should build the ground-truth
/// executor once and call this, instead of paying the index build per
/// call.
pub fn eval_range_with_engines<O, S>(original: &O, simplified: &S, tasks: &QueryTasks) -> f64
where
    O: QueryExecutor + ?Sized,
    S: QueryExecutor + ?Sized,
{
    let truth = original.range_batch(&tasks.range_queries);
    let results = simplified.range_batch(&tasks.range_queries);
    let scores: Vec<F1Score> = truth
        .iter()
        .zip(&results)
        .map(|(t, r)| f1_sets(t, r))
        .collect();
    mean_f1(&scores)
}

/// Mean F1 of one batch section against its ground-truth section.
fn mean_f1_section(truth: &[QueryResult], results: &[QueryResult]) -> f64 {
    let scores: Vec<F1Score> = truth
        .iter()
        .zip(results)
        .map(|(t, r)| {
            f1_sets(
                t.ids().expect("evaluation batches carry no RangeKept"),
                r.ids().expect("evaluation batches carry no RangeKept"),
            )
        })
        .collect();
    mean_f1(&scores)
}

fn eval_clustering<O, S>(original: &O, simplified: &S, tasks: &QueryTasks) -> f64
where
    O: QueryExecutor + ?Sized,
    S: QueryExecutor + ?Sized,
{
    let cap = tasks.params.cluster_cap;
    // TRACLUS consumes AoS trajectories; materialize only the capped head.
    let truth_head: TrajectoryDb = (0..original.len().min(cap))
        .map(|id| original.trajectory(id))
        .collect();
    let result_head: TrajectoryDb = (0..simplified.len().min(cap))
        .map(|id| simplified.trajectory(id))
        .collect();
    let truth = traclus(&truth_head, &tasks.params.traclus).co_clustered_pairs();
    let result = traclus(&result_head, &tasks.params.traclus).co_clustered_pairs();
    f1_pairs(&truth, &result).f1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use trajectory::gen::{generate, DatasetSpec, Scale};
    use trajectory::Simplification;

    fn setup() -> (TrajectoryDb, QueryTasks) {
        let db = generate(&DatasetSpec::geolife(Scale::Smoke), 53);
        let mut rng = StdRng::seed_from_u64(1);
        let params = TaskParams::paper_scaled(10);
        let tasks = build_tasks(&db, QueryDistribution::Data, params, &mut rng);
        (db, tasks)
    }

    #[test]
    fn identity_simplification_scores_one_everywhere() {
        let (db, tasks) = setup();
        let s = evaluate(&db, &db, &tasks);
        for (name, v) in TaskScores::NAMES.iter().zip(s.as_vec()) {
            assert!((v - 1.0).abs() < 1e-9, "{name} = {v}");
        }
    }

    #[test]
    fn harsher_simplification_scores_lower_on_range() {
        let (db, tasks) = setup();
        let endpoints = Simplification::most_simplified(&db).materialize(&db);
        let mild = {
            let mut s = Simplification::most_simplified(&db);
            // Keep every 4th point.
            for (id, t) in db.iter() {
                for idx in (0..t.len() as u32).step_by(4) {
                    s.insert(id, idx);
                }
            }
            s.materialize(&db)
        };
        let harsh = eval_range(&db, &endpoints, &tasks);
        let soft = eval_range(&db, &mild, &tasks);
        assert!(soft >= harsh, "mild {soft} >= harsh {harsh}");
        assert!(
            harsh < 1.0,
            "endpoint-only cannot be perfect on data-centered queries"
        );
    }

    #[test]
    fn task_workloads_have_requested_sizes() {
        let (_, tasks) = setup();
        assert_eq!(tasks.range_queries.len(), 10);
        assert_eq!(
            tasks.knn_queries.len(),
            TaskParams::paper_scaled(10).num_knn
        );
        assert_eq!(
            tasks.sim_queries.len(),
            TaskParams::paper_scaled(10).num_sim
        );
    }

    #[test]
    fn scores_vector_matches_names() {
        let s = TaskScores {
            range: 0.1,
            knn_edr: 0.2,
            knn_t2vec: 0.3,
            similarity: 0.4,
            clustering: 0.5,
        };
        assert_eq!(s.as_vec(), vec![0.1, 0.2, 0.3, 0.4, 0.5]);
        assert_eq!(TaskScores::NAMES.len(), 5);
    }
}
