//! Skyline (Pareto-front) selection over multi-task scores (§V-B(1)).
//!
//! With 25 baselines and 5 query tasks, the paper compares RL4QDTS only
//! against the baselines on the *skyline*: those not dominated on every
//! task by some other baseline.

/// One method's scores across the query tasks (same task order for all).
#[derive(Debug, Clone)]
pub struct ScoredMethod {
    /// Display name.
    pub name: String,
    /// Per-task F1 scores.
    pub scores: Vec<f64>,
}

/// True when `a` dominates `b`: at least as good on every task and
/// strictly better on at least one.
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    let mut strictly = false;
    for (x, y) in a.iter().zip(b) {
        if x < y {
            return false;
        }
        if x > y {
            strictly = true;
        }
    }
    strictly
}

/// Indices of the skyline members (methods not dominated by any other).
pub fn skyline(methods: &[ScoredMethod]) -> Vec<usize> {
    (0..methods.len())
        .filter(|&i| {
            !methods
                .iter()
                .enumerate()
                .any(|(j, m)| j != i && dominates(&m.scores, &methods[i].scores))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(name: &str, scores: &[f64]) -> ScoredMethod {
        ScoredMethod {
            name: name.into(),
            scores: scores.to_vec(),
        }
    }

    #[test]
    fn dominated_methods_are_excluded() {
        let methods = vec![
            m("good", &[0.9, 0.8]),
            m("worse", &[0.8, 0.7]), // dominated by "good"
            m("tradeoff", &[0.95, 0.5]),
        ];
        let sky = skyline(&methods);
        assert_eq!(sky, vec![0, 2]);
    }

    #[test]
    fn identical_scores_all_survive() {
        let methods = vec![m("a", &[0.5, 0.5]), m("b", &[0.5, 0.5])];
        assert_eq!(skyline(&methods), vec![0, 1]);
    }

    #[test]
    fn single_method_is_its_own_skyline() {
        assert_eq!(skyline(&[m("only", &[0.1])]), vec![0]);
    }

    #[test]
    fn dominance_requires_strictness() {
        assert!(!dominates(&[0.5, 0.5], &[0.5, 0.5]));
        assert!(dominates(&[0.5, 0.6], &[0.5, 0.5]));
        assert!(!dominates(&[0.9, 0.4], &[0.5, 0.5]));
    }

    #[test]
    fn empty_input_is_empty() {
        assert!(skyline(&[]).is_empty());
    }
}
