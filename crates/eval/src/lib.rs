//! Experiment harness reproducing every table and figure of the RL4QDTS
//! paper's evaluation (§V).
//!
//! Structure:
//! - [`tasks`]: the five query tasks and the F1 scoring pipeline;
//! - [`suite`]: the 25 EDTS baselines plus RL4QDTS behind one interface;
//! - [`skyline`]: Pareto skyline selection (Fig. 3's methodology);
//! - [`experiments`]: one module per table/figure;
//! - [`serving`]: the `snapshot` / `serve` persistence pipeline (CSV →
//!   snapshot once, then query from the mapping);
//! - [`args`], [`table`]: CLI parsing and plain-text table rendering.
//!
//! Each experiment is exposed both as a library function (tested at smoke
//! scale) and as a binary (`cargo run -p qdts-eval --release --bin
//! fig4_geolife -- --scale small`). See DESIGN.md §4 for the experiment →
//! binary index and EXPERIMENTS.md for measured results.

#![warn(missing_docs)]

pub mod args;
pub mod experiments;
pub mod heatmap;
pub mod serving;
pub mod skyline;
pub mod suite;
pub mod table;
pub mod tasks;

pub use args::ExpArgs;
pub use table::Table;
