//! Table II: ablation study of Agent-Cube and Agent-Point.

use qdts_eval::experiments::ablation;
use qdts_eval::ExpArgs;

fn main() {
    let args = ExpArgs::parse();
    println!(
        "== Table II: ablation study (scale: {:?}, seed {}, runs {}) ==\n",
        args.scale, args.seed, args.runs
    );
    println!(
        "{}",
        ablation::run(args.scale, args.seed, args.runs).render()
    );
    println!(
        "Expected shape (paper, Geolife): full 0.733 > w/o Agent-Point 0.716 \
         > w/o Agent-Cube 0.673 > w/o both 0.641; full method is the slowest."
    );
}
