//! Index ablation: octree (paper) vs. kd-tree-style median splits
//! (the paper's stated future-work direction, implemented here).

use qdts_eval::experiments::index_ablation;
use qdts_eval::ExpArgs;

fn main() {
    let args = ExpArgs::parse();
    println!(
        "== Index ablation: octree vs median-kd (scale: {:?}, seed {}) ==\n",
        args.scale, args.seed
    );
    println!("{}", index_ablation::run(args.scale, args.seed).render());
}
