//! Experiment 11: training time vs pool size and reward interval Δ.

use qdts_eval::experiments::training;
use qdts_eval::ExpArgs;

fn main() {
    let args = ExpArgs::parse();
    println!(
        "== Training time study (scale: {:?}, seed {}) ==",
        args.scale, args.seed
    );
    println!("\n(a) varying the number of training trajectories\n");
    println!(
        "{}",
        training::run_pool_size(args.scale, args.seed).render()
    );
    println!("\n(b) varying the reward interval Δ\n");
    println!("{}", training::run_delta(args.scale, args.seed).render());
}
