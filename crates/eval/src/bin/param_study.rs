//! Parameter studies (tech-report experiments 5–8): S, E, K, and kNN k.

use qdts_eval::experiments::params;
use qdts_eval::ExpArgs;

fn main() {
    let args = ExpArgs::parse();
    println!(
        "== Parameter study (scale: {:?}, seed {}) ==",
        args.scale, args.seed
    );
    println!("\n(5) start level S\n");
    println!(
        "{}",
        params::run_start_level(args.scale, args.seed).render()
    );
    println!("\n(6) end level E\n");
    println!("{}", params::run_max_depth(args.scale, args.seed).render());
    println!("\n(7) Agent-Point K\n");
    println!("{}", params::run_k(args.scale, args.seed).render());
    println!("\n(8) kNN k\n");
    println!("{}", params::run_knn_k(args.scale, args.seed).render());
}
