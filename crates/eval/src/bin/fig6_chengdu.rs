//! Figure 6: RL4QDTS vs. skyline baselines on the Chengdu-like dataset
//! under the "real" (ride-hailing) query distribution.

use qdts_eval::experiments::{chengdu_ratio_sweep, comparison};
use qdts_eval::ExpArgs;
use traj_query::QueryDistribution;
use trajectory::gen::DatasetSpec;

fn main() {
    let args = ExpArgs::parse();
    println!(
        "== Figure 6: comparison with skylines, Chengdu-like (scale: {:?}, seed {}, runs {}) ==",
        args.scale, args.seed, args.runs
    );
    let outcomes = comparison::run(
        &DatasetSpec::chengdu(args.scale),
        &[QueryDistribution::Real],
        &chengdu_ratio_sweep(args.scale),
        args.scale,
        args.seed,
        args.runs,
    );
    for o in outcomes {
        println!("\n-- query distribution: {} --", o.distribution);
        for (task, table) in &o.per_task {
            println!("\n[{task}] F1 vs compression ratio");
            println!("{}", table.render());
        }
    }
}
