//! Figure 8: efficiency and scalability (OSM-like dataset).

use qdts_eval::experiments::efficiency;
use qdts_eval::ExpArgs;

fn main() {
    let args = ExpArgs::parse();
    println!(
        "== Figure 8: efficiency evaluation (scale: {:?}, seed {}) ==",
        args.scale, args.seed
    );
    println!("\n(a) running time vs data size (fixed ratio)\n");
    println!(
        "{}",
        efficiency::run_varying_size(args.scale, args.seed).render()
    );
    println!("\n(b) running time vs budget (fixed data size)\n");
    println!(
        "{}",
        efficiency::run_varying_budget(args.scale, args.seed).render()
    );
}
