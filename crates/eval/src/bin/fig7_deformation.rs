//! Figure 7: deformation (SED) of trajectories returned by queries.

use qdts_eval::experiments::deformation;
use qdts_eval::ExpArgs;

fn main() {
    let args = ExpArgs::parse();
    println!(
        "== Figure 7: deformation study (scale: {:?}, seed {}) ==",
        args.scale, args.seed
    );
    for (dist, table) in deformation::run(args.scale, args.seed) {
        println!("\n-- query distribution: {dist} --  (mean SED of query-returned trajectories, lower is better)\n");
        println!("{}", table.render());
    }
}
