//! Figure 3: skyline selection over the 25 EDTS baselines, three query
//! distributions, five query tasks.

use qdts_eval::experiments::skyline_sel;
use qdts_eval::ExpArgs;

fn main() {
    let args = ExpArgs::parse();
    println!(
        "== Figure 3: skyline selection (scale: {:?}, seed {}) ==",
        args.scale, args.seed
    );
    for outcome in skyline_sel::run(args.scale, args.seed) {
        println!("\n-- query distribution: {} --\n", outcome.distribution);
        println!("{}", outcome.table.render());
        println!("skyline: {}", outcome.skyline.join(", "));
    }
}
