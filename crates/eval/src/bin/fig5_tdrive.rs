//! Figure 5: RL4QDTS vs. skyline baselines on the T-Drive-like dataset.

use qdts_eval::experiments::{comparison, ratio_sweep};
use qdts_eval::ExpArgs;
use traj_query::QueryDistribution;
use trajectory::gen::DatasetSpec;

fn main() {
    let args = ExpArgs::parse();
    println!(
        "== Figure 5: comparison with skylines, T-Drive-like (scale: {:?}, seed {}, runs {}) ==",
        args.scale, args.seed, args.runs
    );
    let outcomes = comparison::run(
        &DatasetSpec::tdrive(args.scale),
        &[
            QueryDistribution::Data,
            QueryDistribution::Gaussian {
                mu: 0.5,
                sigma: 0.25,
            },
        ],
        &ratio_sweep(args.scale),
        args.scale,
        args.seed,
        args.runs,
    );
    for o in outcomes {
        println!("\n-- query distribution: {} --", o.distribution);
        for (task, table) in &o.per_task {
            println!("\n[{task}] F1 vs compression ratio");
            println!("{}", table.render());
        }
    }
}
