//! Figure 9: transferability under query-distribution drift.

use qdts_eval::experiments::transferability;
use qdts_eval::{heatmap, ExpArgs};
use rand::rngs::StdRng;
use rand::SeedableRng;
use traj_query::{range_workload, QueryDistribution, RangeWorkloadSpec};
use trajectory::gen::{generate, DatasetSpec};

fn main() {
    let args = ExpArgs::parse();
    println!(
        "== Figure 9: transferability test (scale: {:?}, seed {}, runs {}) ==",
        args.scale, args.seed, args.runs
    );
    println!("(trained once with Gaussian(mu=0.5, sigma=0.25) range queries)");
    for outcome in transferability::run(args.scale, args.seed, args.runs) {
        println!("\n-- varying {} --\n", outcome.label);
        println!("{}", outcome.table.render());
    }

    // Fig. 9(d)-(g): density of the drifted workloads vs the training one.
    let db = generate(&DatasetSpec::geolife(args.scale), args.seed);
    let bounds = db.bounding_cube();
    let show = |label: &str, dist: QueryDistribution| {
        let spec = RangeWorkloadSpec {
            count: 400,
            spatial_extent: 500.0,
            temporal_extent: 3_600.0,
            dist,
        };
        let mut rng = StdRng::seed_from_u64(args.seed ^ 0x99);
        let queries = range_workload(&db, &spec, &mut rng);
        println!("\n{label}:");
        print!("{}", heatmap::render(&queries, &bounds, 48, 14));
    };
    show(
        "(d) training distribution GAU(0.5, 0.25)",
        transferability::TRAIN_DIST,
    );
    show(
        "(d') drifted GAU(mu=0.9)",
        QueryDistribution::Gaussian {
            mu: 0.9,
            sigma: 0.25,
        },
    );
    show(
        "(e) drifted GAU(sigma=0.85)",
        QueryDistribution::Gaussian {
            mu: 0.5,
            sigma: 0.85,
        },
    );
    show("(f) Zipf(a=4)", QueryDistribution::Zipf { a: 4.0 });
    show("(g) Zipf(a=8)", QueryDistribution::Zipf { a: 8.0 });
}
