//! `snapshot` / `serve`: persist a trajectory database once, then serve
//! queries straight from the mapped file.
//!
//! ```text
//! snapshot_serve snapshot [--csv FILE] [--out FILE.snap] [--scale smoke|small|paper]
//!                         [--ratio R] [--seed N]
//! snapshot_serve serve    [--snap FILE.snap] [--queries N] [--seed N]
//! ```

use std::path::PathBuf;

use qdts_eval::serving::{serve_task, snapshot_task, SnapshotSource};
use trajectory::gen::Scale;

fn usage() -> ! {
    eprintln!(
        "usage:\n  snapshot_serve snapshot [--csv FILE] [--out FILE.snap] \
         [--scale smoke|small|paper] [--ratio R] [--seed N]\n  \
         snapshot_serve serve [--snap FILE.snap] [--queries N] [--seed N]"
    );
    std::process::exit(2);
}

fn main() {
    let mut args = std::env::args().skip(1);
    let task = args.next().unwrap_or_else(|| usage());
    let rest: Vec<String> = args.collect();
    let result = match task.as_str() {
        "snapshot" => run_snapshot(&rest),
        "serve" => run_serve(&rest),
        _ => usage(),
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn flag_value<'a>(rest: &'a [String], flag: &str) -> Option<&'a str> {
    rest.iter()
        .position(|a| a == flag)
        .and_then(|i| rest.get(i + 1))
        .map(String::as_str)
}

fn run_snapshot(rest: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let out = PathBuf::from(flag_value(rest, "--out").unwrap_or("db.snap"));
    let seed: u64 = flag_value(rest, "--seed").unwrap_or("42").parse()?;
    let ratio: Option<f64> = flag_value(rest, "--ratio").map(str::parse).transpose()?;
    let source = match flag_value(rest, "--csv") {
        Some(csv) => SnapshotSource::Csv(PathBuf::from(csv)),
        None => {
            let scale: Scale = flag_value(rest, "--scale").unwrap_or("small").parse()?;
            SnapshotSource::Synthetic(scale)
        }
    };
    let r = snapshot_task(&source, ratio, &out, seed)?;
    println!("== snapshot task ==");
    println!(
        "ingested  {} trajectories / {} points in {:.3}s",
        r.trajectories, r.points, r.ingest_seconds
    );
    if let Some(kept) = r.kept_points {
        println!(
            "simplified to {kept} kept points ({:.1}%) in {:.3}s",
            100.0 * kept as f64 / r.points as f64,
            r.simplify_seconds
        );
    }
    println!(
        "wrote {} ({} bytes) in {:.3}s",
        out.display(),
        r.file_bytes,
        r.write_seconds
    );
    Ok(())
}

fn run_serve(rest: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let snap = PathBuf::from(flag_value(rest, "--snap").unwrap_or("db.snap"));
    let queries: usize = flag_value(rest, "--queries").unwrap_or("100").parse()?;
    let seed: u64 = flag_value(rest, "--seed").unwrap_or("42").parse()?;
    let r = serve_task(&snap, queries, seed)?;
    println!("== serve task ({}) ==", snap.display());
    println!(
        "mapped {} trajectories / {} points in {:.6}s (zero-copy open)",
        r.trajectories, r.points, r.open_seconds
    );
    println!("octree over mapped columns in {:.3}s", r.index_seconds);
    println!(
        "{} range queries on full DB in {:.4}s ({} result ids)",
        r.queries, r.full_batch_seconds, r.full_result_ids
    );
    match r.simplified_batch_seconds {
        Some(s) => println!("{} range queries on kept bitmap (D') in {s:.4}s", r.queries),
        None => println!("no kept bitmap in snapshot (full database only)"),
    }
    Ok(())
}
