//! `snapshot` / `serve`: persist a trajectory database once, then serve
//! queries straight from the mapped file(s).
//!
//! ```text
//! snapshot_serve snapshot [--csv FILE] [--out FILE.snap|DIR] [--scale smoke|small|paper]
//!                         [--ratio R] [--quantize E] [--seed N]
//!                         [--shards N] [--partition grid|time|hash]
//! snapshot_serve serve    [--snap FILE.snap|DIR] [--queries N] [--seed N]
//! ```
//!
//! With `--shards N` the snapshot task writes a *sharded* database: a
//! directory of per-shard snapshot files plus a manifest, partitioned by
//! `--partition` (default `hash`). The serve task opens whatever is at
//! `--snap` through `TrajDb::open`, which auto-detects the layout — a
//! shard directory fans out through the sharded engine (per-shard
//! indexes built in parallel over the mappings), a snapshot file serves
//! zero-copy through the single engine, and a raw CSV parses into owned
//! columns — then executes a mixed range+kNN+similarity workload as one
//! heterogeneous batch.
//!
//! With `--quantize E` the snapshot task writes the coordinate columns
//! through the delta + uniform-quantization codec with max absolute
//! error `E` (metres/seconds in the raw units of each column). The serve
//! task needs no flag: `TrajDb::open` decodes quantized sections
//! transparently.
//!
//! With `--wire` the serve task runs the same mixed workload over the
//! framed TCP protocol instead of in-process: a loopback `traj-serve`
//! server with batched admission, `--clients N` concurrent connections
//! splitting the workload, and coalescing stats in the report.
//!
//! With `--cluster` (shard directories only) the serve task distributes
//! the workload instead: one loopback wire server per shard snapshot, a
//! coordinator fanning the batch out and merging globally, and a
//! cross-check that the distributed results match in-process execution
//! exactly.
//!
//! The `live` task exercises the ingestion layer end to end: a
//! generational database (WAL + snapshot generations in `--dir`) behind
//! a live wire server, `--batches` ingest round-trips, a range workload
//! over the merged base+delta view, and a compaction fold cross-checked
//! for answer stability.

use std::path::PathBuf;

use qdts_eval::serving::{
    cluster_serve_task, live_serve_task, serve_task, shard_snapshot_task, snapshot_task,
    wire_serve_task, SnapshotSource,
};
use trajectory::gen::Scale;
use trajectory::shard::PartitionStrategy;

fn usage() -> ! {
    eprintln!(
        "usage:\n  snapshot_serve snapshot [--csv FILE] [--out FILE.snap|DIR] \
         [--scale smoke|small|paper] [--ratio R] [--quantize E] [--seed N] \
         [--shards N] [--partition grid|time|hash]\n  \
         snapshot_serve serve [--snap FILE.snap|DIR] [--queries N] [--seed N] \
         [--wire] [--clients N] [--cluster]\n  \
         snapshot_serve live [--dir DIR] [--queries N] [--batches N] [--seed N]"
    );
    std::process::exit(2);
}

fn main() {
    let mut args = std::env::args().skip(1);
    let task = args.next().unwrap_or_else(|| usage());
    let rest: Vec<String> = args.collect();
    let result = match task.as_str() {
        "snapshot" => run_snapshot(&rest),
        "serve" => run_serve(&rest),
        "live" => run_live(&rest),
        _ => usage(),
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn flag_value<'a>(rest: &'a [String], flag: &str) -> Option<&'a str> {
    rest.iter()
        .position(|a| a == flag)
        .and_then(|i| rest.get(i + 1))
        .map(String::as_str)
}

/// Resolves `--shards` / `--partition` into a strategy (hash by default).
fn partition_strategy(
    rest: &[String],
    shards: usize,
) -> Result<PartitionStrategy, Box<dyn std::error::Error>> {
    Ok(match flag_value(rest, "--partition").unwrap_or("hash") {
        "grid" => PartitionStrategy::grid_for(shards),
        "time" => PartitionStrategy::Time { parts: shards },
        "hash" => PartitionStrategy::Hash { parts: shards },
        other => return Err(format!("unknown partition strategy: {other}").into()),
    })
}

fn run_snapshot(rest: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let seed: u64 = flag_value(rest, "--seed").unwrap_or("42").parse()?;
    let ratio: Option<f64> = flag_value(rest, "--ratio").map(str::parse).transpose()?;
    let shards: Option<usize> = flag_value(rest, "--shards").map(str::parse).transpose()?;
    let quantize: Option<f64> = flag_value(rest, "--quantize").map(str::parse).transpose()?;
    let source = match flag_value(rest, "--csv") {
        Some(csv) => SnapshotSource::Csv(PathBuf::from(csv)),
        None => {
            let scale: Scale = flag_value(rest, "--scale").unwrap_or("small").parse()?;
            SnapshotSource::Synthetic(scale)
        }
    };

    if let Some(shards) = shards {
        let out = PathBuf::from(flag_value(rest, "--out").unwrap_or("db.shards"));
        let strategy = partition_strategy(rest, shards)?;
        let r = shard_snapshot_task(&source, &strategy, ratio, quantize, &out, seed)?;
        println!("== sharded snapshot task ==");
        println!(
            "ingested  {} trajectories / {} points in {:.3}s",
            r.trajectories, r.points, r.ingest_seconds
        );
        println!(
            "partitioned into {} shards ({}) in {:.3}s",
            r.shards,
            strategy.label(),
            r.partition_seconds
        );
        if let Some(kept) = r.kept_points {
            println!(
                "simplified to {kept} kept points ({:.1}%) across shards in {:.3}s",
                100.0 * kept as f64 / r.points as f64,
                r.simplify_seconds
            );
        }
        println!(
            "wrote {} ({} snapshot bytes + manifest) in {:.3}s",
            out.display(),
            r.file_bytes,
            r.write_seconds
        );
        return Ok(());
    }

    let out = PathBuf::from(flag_value(rest, "--out").unwrap_or("db.snap"));
    let r = snapshot_task(&source, ratio, quantize, &out, seed)?;
    println!("== snapshot task ==");
    println!(
        "ingested  {} trajectories / {} points in {:.3}s",
        r.trajectories, r.points, r.ingest_seconds
    );
    if let Some(kept) = r.kept_points {
        println!(
            "simplified to {kept} kept points ({:.1}%) in {:.3}s",
            100.0 * kept as f64 / r.points as f64,
            r.simplify_seconds
        );
    }
    println!(
        "wrote {} ({} bytes) in {:.3}s",
        out.display(),
        r.file_bytes,
        r.write_seconds
    );
    Ok(())
}

fn run_live(rest: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let dir = PathBuf::from(flag_value(rest, "--dir").unwrap_or("db.live"));
    let queries: usize = flag_value(rest, "--queries").unwrap_or("100").parse()?;
    let batches: usize = flag_value(rest, "--batches").unwrap_or("8").parse()?;
    let seed: u64 = flag_value(rest, "--seed").unwrap_or("42").parse()?;
    let r = live_serve_task(&dir, queries, batches, seed)?;
    println!("== live serve task ({}) ==", dir.display());
    println!(
        "base generation: {} trajectories (gen {})",
        r.base_trajectories, r.generation_before
    );
    println!(
        "ingested {} trajectories / {} points over the wire in {:.4}s \
         ({} acked batches, one WAL sync each)",
        r.ingested_trajectories, r.ingested_points, r.ingest_seconds, batches
    );
    println!(
        "{queries} range queries over the merged base+delta view in {:.4}s \
         ({} result ids, identical to in-process execution)",
        r.query_seconds, r.full_result_ids
    );
    println!(
        "compacted delta into generation {} (answers unchanged across the fold)",
        r.generation_after
    );
    Ok(())
}

fn run_serve(rest: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let snap = PathBuf::from(flag_value(rest, "--snap").unwrap_or("db.snap"));
    let queries: usize = flag_value(rest, "--queries").unwrap_or("100").parse()?;
    let seed: u64 = flag_value(rest, "--seed").unwrap_or("42").parse()?;

    if rest.iter().any(|a| a == "--cluster") {
        let r = cluster_serve_task(&snap, queries, seed)?;
        println!("== cluster serve task ({}) ==", snap.display());
        println!(
            "{} shard servers / {} trajectories / {} points up in {:.4}s \
             (per-shard wire servers + coordinator handshakes)",
            r.shards, r.trajectories, r.points, r.open_seconds
        );
        println!(
            "distributed fan-out + merge in {:.4}s; {} result ids \
             (in-process cross-check: {} — identical)",
            r.serve_seconds, r.full_result_ids, r.in_process_result_ids
        );
        return Ok(());
    }

    if rest.iter().any(|a| a == "--wire") {
        let clients: usize = flag_value(rest, "--clients").unwrap_or("8").parse()?;
        let r = wire_serve_task(&snap, queries, clients, seed)?;
        println!("== wire serve task ({}) ==", snap.display());
        println!(
            "opened {} trajectories / {} points in {:.4}s (auto-detected layout)",
            r.trajectories, r.points, r.open_seconds
        );
        println!(
            "{} clients sent {} requests / {} queries over loopback in {:.4}s",
            r.clients, r.requests, r.queries, r.serve_seconds
        );
        println!(
            "admission coalesced them into {} engine passes (mean batch {:.1}); \
             {} result ids",
            r.batches, r.mean_batch, r.full_result_ids
        );
        return Ok(());
    }

    let r = serve_task(&snap, queries, seed)?;
    println!("== serve task ({}) ==", snap.display());
    if r.sharded {
        println!(
            "opened {} shards / {} trajectories / {} points in {:.4}s \
             (auto-detected shard set; mapped + parallel per-shard octrees)",
            r.shards, r.trajectories, r.points, r.open_seconds
        );
    } else {
        println!(
            "opened {} trajectories / {} points in {:.4}s (auto-detected layout)",
            r.trajectories, r.points, r.open_seconds
        );
    }
    let [n_range, n_knn, n_sim, _] = r.kind_counts;
    println!(
        "mixed batch ({n_range} range + {n_knn} knn + {n_sim} similarity) \
         in one pass: {:.4}s ({} result ids)",
        r.batch_seconds, r.full_result_ids
    );
    match r.simplified_batch_seconds {
        Some(s) => println!("{n_range} range queries on kept bitmap(s) (D') in {s:.4}s"),
        None => println!("no kept bitmap in source (full database only)"),
    }
    Ok(())
}
