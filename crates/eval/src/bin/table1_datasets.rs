//! Table I: dataset statistics (measured vs. paper reference).

use qdts_eval::experiments::datasets;
use qdts_eval::ExpArgs;

fn main() {
    let args = ExpArgs::parse();
    println!(
        "== Table I: dataset statistics (scale: {:?}, seed {}) ==\n",
        args.scale, args.seed
    );
    println!("{}", datasets::run(args.scale, args.seed).render());
    println!(
        "Synthetic generators reproduce the paper's per-dataset shape \
         (sampling interval, step length, trajectory length ratios) at laptop scale; \
         see DESIGN.md §5."
    );
}
