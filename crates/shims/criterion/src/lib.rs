//! Offline stand-in for the parts of `criterion` this workspace uses.
//!
//! The build environment has no crates.io access, so benchmarks run on this
//! shim: each `bench_function` adaptively sizes a timing loop (doubling the
//! iteration count until the measurement window is long enough), repeats it
//! for a handful of samples, and reports the median together with min/max,
//! in criterion's familiar one-line format. There are no statistical
//! regressions reports or HTML output — the numbers print to stdout.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub use std::hint::black_box;

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Drives the timing loop inside a benchmark closure.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_count: usize,
}

impl Bencher {
    /// Measures `f`, called repeatedly in an adaptively sized loop.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // Warm-up and loop sizing: grow until one batch takes >= 5 ms.
        let mut batch: u64 = 1;
        let per_iter = loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(5) || batch >= 1 << 20 {
                break elapsed / batch as u32;
            }
            batch *= 2;
        };
        // Cap total measurement time at ~1s regardless of sample count.
        let budget = Duration::from_millis(1_000);
        let mut samples = Vec::with_capacity(self.sample_count);
        let all_started = Instant::now();
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            samples.push(start.elapsed() / batch as u32);
            if all_started.elapsed() > budget {
                break;
            }
        }
        if samples.is_empty() {
            samples.push(per_iter);
        }
        self.samples = samples;
    }

    fn report(&self, name: &str) {
        let mut sorted = self.samples.clone();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        let min = sorted[0];
        let max = *sorted.last().expect("at least one sample");
        println!(
            "{name:<50} time: [{} {} {}]",
            fmt_duration(min),
            fmt_duration(median),
            fmt_duration(max)
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.4} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.4} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.4} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// The benchmark harness entry point.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <filter>` narrows which benchmarks run; the
        // harness also tolerates libtest-style flags like `--bench`.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Self {
            sample_size: 10,
            filter,
        }
    }
}

impl Criterion {
    /// Override the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0);
        self.sample_size = n;
        self
    }

    fn should_run(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    fn run_one(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) {
        if !self.should_run(name) {
            return;
        }
        let mut b = Bencher {
            samples: Vec::new(),
            sample_count: self.sample_size,
        };
        f(&mut b);
        b.report(name);
    }

    /// Times one benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        self.run_one(name, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            criterion: self,
        }
    }
}

/// A group of related benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Override the number of timing samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0);
        self.sample_size = n;
        self
    }

    fn run_one(&mut self, id: BenchmarkId, mut f: impl FnMut(&mut Bencher)) {
        let name = format!("{}/{}", self.name, id.id);
        if !self.criterion.should_run(&name) {
            return;
        }
        let mut b = Bencher {
            samples: Vec::new(),
            sample_count: self.sample_size,
        };
        f(&mut b);
        b.report(&name);
    }

    /// Times one benchmark of the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        self.run_one(id.into(), f);
        self
    }

    /// Times one parameterized benchmark of the group.
    pub fn bench_with_input<I>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.run_one(id.into(), |b| f(b, input));
        self
    }

    /// Ends the group (kept for API compatibility; reporting is immediate).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
