//! Offline stand-in for the parts of `rand` 0.8 this workspace uses.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the exact API surface it consumes: [`rngs::StdRng`] (a xoshiro256++
//! generator seeded via SplitMix64), the [`Rng`] / [`SeedableRng`] traits
//! with `gen_range` / `gen_bool` / `seed_from_u64`, and
//! [`seq::SliceRandom::shuffle`]. Streams are deterministic per seed, which
//! is all the reproduction relies on — it never promises bit-compatibility
//! with upstream `rand`.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (the subset used: `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, expanding it to full state.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range`. Panics when the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Bernoulli sample: `true` with probability `p` (clamped to [0, 1]).
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Ranges a uniform value can be drawn from (the shim's `SampleRange`).
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Maps 64 random bits to a uniform f64 in `[0, 1)`.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let draw = (rng.next_u64() as u128 * span) >> 64;
                self.start.wrapping_add(draw as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                let draw = (rng.next_u64() as u128 * span) >> 64;
                lo.wrapping_add(draw as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                let v = self.start + (self.end - self.start) * u;
                // Floating rounding can land exactly on `end`; stay half-open.
                if v < self.end { v } else { self.start }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                lo + (hi - lo) * unit_f64(rng.next_u64()) as $t
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++ with
    /// SplitMix64 state expansion, as recommended by its authors.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: std::array::from_fn(|_| splitmix64(&mut sm)),
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice extensions (the subset used: `shuffle`).
    pub trait SliceRandom {
        /// Uniform Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.gen_range(0..1_000_000usize),
                b.gen_range(0..1_000_000usize)
            );
        }
        let mut c = StdRng::seed_from_u64(43);
        let same = (0..64).all(|_| a.gen_range(0..1_000u32) == c.gen_range(0..1_000u32));
        assert!(!same, "different seeds must diverge");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10..20usize);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(-2.0..3.0f64);
            assert!((-2.0..3.0).contains(&f));
            let g = rng.gen_range(1.0..=2.0f64);
            assert!((1.0..=2.0).contains(&g));
            let i = rng.gen_range(0..=4usize);
            assert!(i <= 4);
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "skewed bucket: {counts:?}");
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!(
            (23_000..27_000).contains(&hits),
            "p=0.25 gave {hits}/100000"
        );
        assert!((0..1000).all(|_| !rng.gen_bool(0.0)));
        assert!((0..1000).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the identity permutation");
    }
}
