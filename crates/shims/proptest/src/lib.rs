//! Offline stand-in for the parts of `proptest` this workspace uses.
//!
//! The build environment has no crates.io access, so property tests run on
//! this shim: random-sampling generation (no shrinking) over the same
//! [`Strategy`] combinator surface the tests were written against —
//! ranges, tuples, [`Just`], `prop_map` / `prop_flat_map` / `boxed`,
//! [`prop_oneof!`] weighted unions, `prop::collection::{vec, btree_set}`,
//! `any::<bool>()` — driven by the
//! [`proptest!`] macro with `prop_assert*` / `prop_assume!` and a
//! deterministic per-test RNG. Failures report the failing assertion but
//! are not shrunk to minimal counterexamples.

#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

/// Collection strategies (`prop::collection::*`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive size bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            Self {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.gen_usize(self.lo, self.hi)
        }
    }

    /// Strategy for `Vec`s of `element` values with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet`s of `element` values with a target size in
    /// `size` (duplicates collapse, so sparse domains may yield fewer
    /// elements than requested).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`btree_set`].
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.pick(rng);
            let mut out = BTreeSet::new();
            // Bounded retries: dense domains reach `target`, sparse ones
            // settle for what exists.
            let mut tries = 0usize;
            while out.len() < target && tries < 16 * target + 64 {
                out.insert(self.element.generate(rng));
                tries += 1;
            }
            out
        }
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical strategy.
    pub trait Arbitrary: Sized {
        /// Produces the canonical strategy for the type.
        fn arbitrary() -> AnyStrategy<Self>;
    }

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone)]
    pub struct AnyStrategy<T>(PhantomData<T>);

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        T::arbitrary()
    }

    impl Arbitrary for bool {
        fn arbitrary() -> AnyStrategy<Self> {
            AnyStrategy(PhantomData)
        }
    }

    impl Strategy for AnyStrategy<bool> {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.gen_bool()
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary() -> AnyStrategy<Self> {
                    AnyStrategy(PhantomData)
                }
            }
            impl Strategy for AnyStrategy<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

/// Namespace mirror so `prop::collection::vec(..)` works via the prelude.
pub mod prop {
    pub use crate::collection;
}

/// The glob-imported prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Fails the current property case with a message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed at {}:{}: {}", file!(), line!(), stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed at {}:{}: {}", file!(), line!(), format!($($fmt)+)),
            ));
        }
    };
}

/// Equality assertion for property cases.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "{:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "{} ({:?} != {:?})", format!($($fmt)+), l, r);
    }};
}

/// Inequality assertion for property cases.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "both sides equal {:?}", l);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "{} (both {:?})", format!($($fmt)+), l);
    }};
}

/// Picks one of several strategies per draw, optionally weighted
/// (`w => strategy`); unweighted arms draw uniformly. All arms must
/// yield the same value type (they are boxed internally).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Discards the current case (it is re-drawn, not counted as a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Defines property tests: each `fn name(bindings in strategies) { body }`
/// becomes a `#[test]` running `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr); $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                let mut cases = 0u32;
                let mut rejects = 0u32;
                while cases < config.cases {
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $(
                                let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                            )+
                            $body
                            #[allow(unreachable_code)]
                            ::std::result::Result::Ok(())
                        })();
                    match outcome {
                        ::std::result::Result::Ok(()) => cases += 1,
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {
                            rejects += 1;
                            assert!(
                                rejects < 64 * config.cases + 1024,
                                "too many prop_assume! rejections in {}",
                                stringify!($name),
                            );
                        }
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!("property {} failed after {} cases: {}", stringify!($name), cases, msg);
                        }
                    }
                }
            }
        )*
    };
}
