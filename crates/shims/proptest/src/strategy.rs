//! The [`Strategy`] trait and its combinators.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating random values of one type.
///
/// Unlike upstream proptest there is no value tree / shrinking: `generate`
/// draws one sample directly.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds from
    /// it (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`prop_oneof!`](crate::prop_oneof): draws from one of several
/// type-erased strategies, chosen with probability proportional to the
/// arm weights.
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Builds a union from `(weight, strategy)` arms. The total weight
    /// must be positive.
    pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! needs a positive total weight");
        Self { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut draw = ((rng.gen_u64() as u128 * self.total as u128) >> 64) as u64;
        for (w, s) in &self.arms {
            if draw < u64::from(*w) {
                return s.generate(rng);
            }
            draw -= u64::from(*w);
        }
        // Unreachable in practice (draw < total); defend against it
        // anyway so a rounding surprise can't panic a property run.
        self.arms.last().expect("non-empty union").1.generate(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let draw = (rng.gen_u64() as u128 * span) >> 64;
                self.start.wrapping_add(draw as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as u128) - (lo as u128) + 1;
                let draw = (rng.gen_u64() as u128 * span) >> 64;
                lo.wrapping_add(draw as $t)
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let v = self.start + (self.end - self.start) * rng.gen_unit() as $t;
                if v < self.end { v } else { self.start }
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                lo + (hi - lo) * rng.gen_unit() as $t
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}
