//! Test-runner plumbing: configuration, case errors, and the per-test RNG.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runner configuration (the subset used: case count).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of successful cases required per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Why a single property case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` failed; the case is re-drawn.
    Reject,
    /// An assertion failed; the whole property fails.
    Fail(String),
}

impl TestCaseError {
    /// Builds the failure variant.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// Deterministic RNG driving strategy generation.
///
/// Seeded from the property's name (plus an optional `PROPTEST_SEED`
/// environment variable) so every run explores the same sequence — failures
/// reproduce without a persistence file.
#[derive(Debug, Clone)]
pub struct TestRng {
    rng: StdRng,
}

impl TestRng {
    /// RNG for the named property.
    pub fn deterministic(test_name: &str) -> Self {
        // FNV-1a over the name, mixed with an optional env override.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        if let Ok(extra) = std::env::var("PROPTEST_SEED") {
            if let Ok(n) = extra.trim().parse::<u64>() {
                h ^= n.rotate_left(32);
            }
        }
        Self {
            rng: StdRng::seed_from_u64(h),
        }
    }

    /// Next 64 random bits.
    pub fn gen_u64(&mut self) -> u64 {
        self.rng.gen_range(0..=u64::MAX)
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn gen_unit(&mut self) -> f64 {
        self.rng.gen_range(0.0..1.0)
    }

    /// Uniform usize in `[lo, hi]`.
    pub fn gen_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.rng.gen_range(lo..=hi)
    }

    /// Uniform bool.
    pub fn gen_bool(&mut self) -> bool {
        self.rng.gen_bool(0.5)
    }
}
