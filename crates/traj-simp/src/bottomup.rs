//! Bottom-Up simplification (Marteau & Ménier): start from the full
//! trajectory and repeatedly *drop* the point whose removal introduces the
//! smallest error, until the budget is met.
//!
//! The drop loop is implemented twice over the same heap discipline: the
//! AoS path walks [`Trajectory`] point slices, the **native columnar**
//! path ([`Simplifier::simplify_store`]) walks zero-copy
//! [`TrajView`](trajectory::TrajView)s straight off the columns — no
//! `Vec<Point>` trajectories are materialized, no AoS round-trip. Both
//! paths push and pop identical cost sequences through the shared
//! [`LazyHeap`], so their kept sets are equal point-for-point
//! (equality-tested for all four error measures and both adaptations).

use crate::adapt::{per_trajectory_budgets, per_trajectory_budgets_store, Adaptation};
use crate::heap::LazyHeap;
use crate::Simplifier;
use trajectory::{
    AsColumns, ErrorMeasure, PointSeq, PointStore, Simplification, TrajId, Trajectory, TrajectoryDb,
};

/// The Bottom-Up baseline, parameterized by error measure and adaptation.
#[derive(Debug, Clone, Copy)]
pub struct BottomUp {
    /// Error measure driving the drop order.
    pub measure: ErrorMeasure,
    /// Database adaptation ("E" or "W").
    pub adaptation: Adaptation,
}

impl BottomUp {
    /// Creates a Bottom-Up simplifier.
    pub fn new(measure: ErrorMeasure, adaptation: Adaptation) -> Self {
        Self {
            measure,
            adaptation,
        }
    }
}

impl Simplifier for BottomUp {
    fn name(&self) -> String {
        format!("Bottom-Up({},{})", self.adaptation, self.measure)
    }

    fn simplify(&self, db: &TrajectoryDb, budget: usize) -> Simplification {
        match self.adaptation {
            Adaptation::Each => {
                let budgets = per_trajectory_budgets(db, budget);
                let kept = db
                    .iter()
                    .map(|(id, t)| bottomup_one(t, budgets[id], self.measure))
                    .collect();
                Simplification::from_kept(db, kept)
            }
            Adaptation::Whole => bottomup_whole(db, budget, self.measure),
        }
    }

    /// Native columnar Bottom-Up: the drop loops run directly over
    /// zero-copy [`TrajView`](trajectory::TrajView)s — identical kept
    /// sets to [`Simplifier::simplify`] on the equivalent database.
    fn simplify_store(&self, store: &PointStore, budget: usize) -> Simplification {
        match self.adaptation {
            Adaptation::Each => {
                let budgets = per_trajectory_budgets_store(store, budget);
                let kept = store
                    .views()
                    .enumerate()
                    .map(|(id, v)| bottomup_one_seq(&v, budgets[id], self.measure))
                    .collect();
                Simplification::from_kept_store(store, kept)
            }
            Adaptation::Whole => bottomup_whole_store(store, budget, self.measure),
        }
    }
}

/// The cost of dropping kept point `idx`: the Eq. 1 segment error of the
/// merged anchor `(left, right)` that removal would create.
fn drop_cost(
    traj: &Trajectory,
    simp: &Simplification,
    id: TrajId,
    idx: u32,
    m: ErrorMeasure,
) -> Option<f64> {
    let (l, r) = simp.kept_neighbors(id, idx)?;
    Some(m.segment_error(traj, l as usize, r as usize))
}

/// Bottom-Up for a single trajectory under a point budget.
pub fn bottomup_one(traj: &Trajectory, budget: usize, measure: ErrorMeasure) -> Vec<u32> {
    let n = traj.len();
    if n <= 2 {
        return (0..n as u32).collect();
    }
    let budget = budget.clamp(2, n);
    let db = TrajectoryDb::new(vec![traj.clone()]);
    let mut simp = Simplification::full(&db);
    run_bottomup_db(&db, &mut simp, budget, measure);
    simp.kept(0).to_vec()
}

/// Layout-agnostic single-trajectory Bottom-Up: the same drop loop over
/// any [`PointSeq`] — kept indices are maintained in a doubly-linked
/// prev/next list instead of a [`Simplification`], but costs, version
/// stamps, and heap operations occur in exactly the order of
/// [`bottomup_one`], so the kept sets are identical.
pub fn bottomup_one_seq<S: PointSeq + ?Sized>(
    seq: &S,
    budget: usize,
    measure: ErrorMeasure,
) -> Vec<u32> {
    let n = seq.n_points();
    if n <= 2 {
        return (0..n as u32).collect();
    }
    let budget = budget.clamp(2, n);
    let last = n as u32 - 1;
    // Doubly-linked kept list: prev/next of every still-kept index.
    let mut prev: Vec<u32> = (0..n as u32).map(|i| i.wrapping_sub(1)).collect();
    let mut next: Vec<u32> = (1..=n as u32).collect();
    let mut kept = vec![true; n];
    let mut versions = vec![0u64; n];
    let mut heap: LazyHeap<u32> = LazyHeap::new();
    for idx in 1..last {
        let c = measure.segment_error_seq(
            seq,
            prev[idx as usize] as usize,
            next[idx as usize] as usize,
        );
        heap.push(-c, 0, idx); // negate: LazyHeap is a max-heap
    }
    let mut total = n;
    while total > budget {
        let popped = heap.pop_current(|&idx, v| versions[idx as usize] == v && kept[idx as usize]);
        let Some((_, idx)) = popped else { break };
        let i = idx as usize;
        let (l, r) = (prev[i], next[i]);
        kept[i] = false;
        next[l as usize] = r;
        prev[r as usize] = l;
        total -= 1;
        // The bracketing neighbors' drop costs changed: re-push with fresh
        // stamps (endpoints are never dropped, so they never enter).
        for nb in [l, r] {
            if nb != 0 && nb != last {
                let nbi = nb as usize;
                versions[nbi] += 1;
                let c = measure.segment_error_seq(seq, prev[nbi] as usize, next[nbi] as usize);
                heap.push(-c, versions[nbi], nb);
            }
        }
    }
    (0..n as u32).filter(|&i| kept[i as usize]).collect()
}

/// Bottom-Up over the whole database: one global min-heap of drop costs.
fn bottomup_whole(db: &TrajectoryDb, budget: usize, measure: ErrorMeasure) -> Simplification {
    let mut simp = Simplification::full(db);
    let budget = budget.max(crate::min_points(db));
    run_bottomup_db(db, &mut simp, budget, measure);
    simp
}

/// [`bottomup_whole`] walking columns natively: per-trajectory point
/// access is a [`TrajView`](trajectory::TrajView) sub-slice lookup
/// instead of a pointer chase through `Vec<Trajectory>`. Heap order,
/// tie-breaking, and therefore the kept sets are identical to the AoS
/// path.
fn bottomup_whole_store(
    store: &PointStore,
    budget: usize,
    measure: ErrorMeasure,
) -> Simplification {
    let mut simp = Simplification::full_store(store);
    let budget = budget.max(crate::min_points_store(store));
    let mut versions: Vec<Vec<u64>> = store.views().map(|v| vec![0u64; v.len()]).collect();
    let mut heap: LazyHeap<(TrajId, u32)> = LazyHeap::new();
    for (id, v) in AsColumns::iter(store) {
        for idx in 1..v.len().saturating_sub(1) as u32 {
            if let Some(c) = drop_cost_seq(&v, &simp, id, idx, measure) {
                heap.push(-c, 0, (id, idx));
            }
        }
    }
    let mut total = simp.total_points();
    while total > budget {
        let popped = heap
            .pop_current(|&(id, idx), v| versions[id][idx as usize] == v && simp.contains(id, idx));
        let Some((_, (id, idx))) = popped else { break };
        let (l, r) = simp.kept_neighbors(id, idx).expect("validated current");
        let removed = simp.remove(id, idx);
        debug_assert!(removed);
        total -= 1;
        let v = store.view(id);
        for nb in [l, r] {
            if simp.kept_neighbors(id, nb).is_some() {
                versions[id][nb as usize] += 1;
                if let Some(c) = drop_cost_seq(&v, &simp, id, nb, measure) {
                    heap.push(-c, versions[id][nb as usize], (id, nb));
                }
            }
        }
    }
    simp
}

/// [`drop_cost`] over any [`PointSeq`] (same Eq. 1 segment error).
fn drop_cost_seq<S: PointSeq + ?Sized>(
    seq: &S,
    simp: &Simplification,
    id: TrajId,
    idx: u32,
    m: ErrorMeasure,
) -> Option<f64> {
    let (l, r) = simp.kept_neighbors(id, idx)?;
    Some(m.segment_error_seq(seq, l as usize, r as usize))
}

/// Core drop loop shared by both adaptations (the per-trajectory case is a
/// single-trajectory database).
fn run_bottomup_db(
    db: &TrajectoryDb,
    simp: &mut Simplification,
    budget: usize,
    measure: ErrorMeasure,
) {
    // Version stamps: an entry for (id, idx) is valid only if the stamp
    // matches (neighbors unchanged since push) and the point is still kept.
    let mut versions: Vec<Vec<u64>> = db
        .trajectories()
        .iter()
        .map(|t| vec![0u64; t.len()])
        .collect();
    let mut heap: LazyHeap<(TrajId, u32)> = LazyHeap::new();
    for (id, t) in db.iter() {
        for idx in 1..t.len().saturating_sub(1) as u32 {
            if let Some(c) = drop_cost(t, simp, id, idx, measure) {
                heap.push(-c, 0, (id, idx)); // negate: LazyHeap is a max-heap
            }
        }
    }
    let mut total = simp.total_points();
    while total > budget {
        let popped = heap
            .pop_current(|&(id, idx), v| versions[id][idx as usize] == v && simp.contains(id, idx));
        let Some((_, (id, idx))) = popped else { break };
        let (l, r) = simp.kept_neighbors(id, idx).expect("validated current");
        let removed = simp.remove(id, idx);
        debug_assert!(removed);
        total -= 1;
        // The bracketing neighbors' drop costs changed: re-push with fresh
        // stamps.
        let t = db.get(id);
        for nb in [l, r] {
            if simp.kept_neighbors(id, nb).is_some() {
                versions[id][nb as usize] += 1;
                if let Some(c) = drop_cost(t, simp, id, nb, measure) {
                    heap.push(-c, versions[id][nb as usize], (id, nb));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trajectory::Point;

    fn zigzag(n: usize, amp: f64) -> Trajectory {
        Trajectory::new(
            (0..n)
                .map(|i| {
                    let y = if i % 2 == 0 { 0.0 } else { amp };
                    Point::new(i as f64 * 10.0, y, i as f64)
                })
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn respects_budget_and_endpoints() {
        let t = zigzag(40, 5.0);
        for budget in [2, 7, 20, 40] {
            let kept = bottomup_one(&t, budget, ErrorMeasure::Sed);
            assert_eq!(kept.len(), budget.max(2), "exact budget expected");
            assert_eq!(kept[0], 0);
            assert_eq!(*kept.last().unwrap(), 39);
        }
    }

    #[test]
    fn drops_redundant_points_first() {
        // Straight line with one outlier: everything but the outlier is
        // free to drop, so the outlier must survive a budget of 3.
        let mut pts: Vec<Point> = (0..20)
            .map(|i| Point::new(i as f64 * 10.0, 0.0, i as f64))
            .collect();
        pts[11] = Point::new(110.0, 400.0, 11.0);
        let t = Trajectory::new(pts).unwrap();
        let kept = bottomup_one(&t, 3, ErrorMeasure::Sed);
        assert_eq!(kept, vec![0, 11, 19]);
    }

    #[test]
    fn full_budget_is_identity() {
        let t = zigzag(15, 3.0);
        let kept = bottomup_one(&t, 15, ErrorMeasure::Ped);
        assert_eq!(kept.len(), 15);
    }

    #[test]
    fn whole_adaptation_prefers_dropping_from_simple_trajectories() {
        let wild = zigzag(30, 200.0);
        let straight = Trajectory::new(
            (0..30)
                .map(|i| Point::new(i as f64 * 10.0, 0.0, i as f64))
                .collect(),
        )
        .unwrap();
        let db = TrajectoryDb::new(vec![wild, straight]);
        let bu = BottomUp::new(ErrorMeasure::Sed, Adaptation::Whole);
        let simp = bu.simplify(&db, 34);
        assert_eq!(simp.total_points(), 34);
        assert!(
            simp.kept(0).len() > simp.kept(1).len(),
            "wild {} vs straight {}",
            simp.kept(0).len(),
            simp.kept(1).len()
        );
        // The straight trajectory should be reduced to nearly endpoints.
        assert!(simp.kept(1).len() <= 4);
    }

    #[test]
    fn budget_below_floor_clamps_to_endpoints() {
        let db = TrajectoryDb::new(vec![zigzag(10, 1.0), zigzag(10, 1.0)]);
        let bu = BottomUp::new(ErrorMeasure::Sed, Adaptation::Whole);
        let simp = bu.simplify(&db, 0);
        assert_eq!(simp.total_points(), 4);
    }

    #[test]
    fn all_measures_and_adaptations_run() {
        let db = TrajectoryDb::new(vec![zigzag(25, 5.0), zigzag(12, 2.0)]);
        for m in ErrorMeasure::ALL {
            for a in [Adaptation::Each, Adaptation::Whole] {
                let simp = BottomUp::new(m, a).simplify(&db, 12);
                assert!(simp.total_points() <= 12, "{m} {a}");
            }
        }
    }

    #[test]
    fn name_matches_paper_convention() {
        assert_eq!(
            BottomUp::new(ErrorMeasure::Dad, Adaptation::Each).name(),
            "Bottom-Up(E,DAD)"
        );
    }

    #[test]
    fn simplify_store_matches_aos_for_all_measures_and_adaptations() {
        // The native columnar path must produce the exact kept sets of
        // the AoS path: same drop order, same tie-breaking.
        let db = TrajectoryDb::new(vec![zigzag(40, 8.0), zigzag(25, 3.0), zigzag(7, 30.0)]);
        let store = db.to_store();
        for m in ErrorMeasure::ALL {
            for a in [Adaptation::Each, Adaptation::Whole] {
                for budget in [6, 20, 50, 200] {
                    let bu = BottomUp::new(m, a);
                    assert_eq!(
                        bu.simplify_store(&store, budget),
                        bu.simplify(&db, budget),
                        "{m} {a} budget {budget}"
                    );
                }
            }
        }
    }

    #[test]
    fn one_seq_matches_one_on_views() {
        let t = zigzag(33, 6.0);
        let db = TrajectoryDb::new(vec![t.clone()]);
        let store = db.to_store();
        for m in ErrorMeasure::ALL {
            for budget in [2, 5, 12, 33] {
                assert_eq!(
                    bottomup_one_seq(&store.view(0), budget, m),
                    bottomup_one(&t, budget, m),
                    "{m} budget {budget}"
                );
            }
        }
    }

    #[test]
    fn bottomup_error_close_to_topdown() {
        // Both heuristics should land in the same error ballpark on a
        // benign input (sanity guard against gross implementation bugs).
        let t = zigzag(60, 5.0);
        let bu = bottomup_one(&t, 12, ErrorMeasure::Sed);
        let td = crate::topdown::topdown_one(&t, 12, ErrorMeasure::Sed);
        let e_bu = ErrorMeasure::Sed.trajectory_error(&t, &bu);
        let e_td = ErrorMeasure::Sed.trajectory_error(&t, &td);
        assert!(
            e_bu <= 3.0 * e_td + 1e-9,
            "bottom-up {e_bu} vs top-down {e_td}"
        );
    }
}
