//! Bottom-Up simplification (Marteau & Ménier): start from the full
//! trajectory and repeatedly *drop* the point whose removal introduces the
//! smallest error, until the budget is met.

use crate::adapt::{per_trajectory_budgets, Adaptation};
use crate::heap::LazyHeap;
use crate::Simplifier;
use trajectory::{ErrorMeasure, Simplification, TrajId, Trajectory, TrajectoryDb};

/// The Bottom-Up baseline, parameterized by error measure and adaptation.
#[derive(Debug, Clone, Copy)]
pub struct BottomUp {
    /// Error measure driving the drop order.
    pub measure: ErrorMeasure,
    /// Database adaptation ("E" or "W").
    pub adaptation: Adaptation,
}

impl BottomUp {
    /// Creates a Bottom-Up simplifier.
    pub fn new(measure: ErrorMeasure, adaptation: Adaptation) -> Self {
        Self {
            measure,
            adaptation,
        }
    }
}

impl Simplifier for BottomUp {
    fn name(&self) -> String {
        format!("Bottom-Up({},{})", self.adaptation, self.measure)
    }

    fn simplify(&self, db: &TrajectoryDb, budget: usize) -> Simplification {
        match self.adaptation {
            Adaptation::Each => {
                let budgets = per_trajectory_budgets(db, budget);
                let kept = db
                    .iter()
                    .map(|(id, t)| bottomup_one(t, budgets[id], self.measure))
                    .collect();
                Simplification::from_kept(db, kept)
            }
            Adaptation::Whole => bottomup_whole(db, budget, self.measure),
        }
    }
}

/// The cost of dropping kept point `idx`: the Eq. 1 segment error of the
/// merged anchor `(left, right)` that removal would create.
fn drop_cost(
    traj: &Trajectory,
    simp: &Simplification,
    id: TrajId,
    idx: u32,
    m: ErrorMeasure,
) -> Option<f64> {
    let (l, r) = simp.kept_neighbors(id, idx)?;
    Some(m.segment_error(traj, l as usize, r as usize))
}

/// Bottom-Up for a single trajectory under a point budget.
pub fn bottomup_one(traj: &Trajectory, budget: usize, measure: ErrorMeasure) -> Vec<u32> {
    let n = traj.len();
    if n <= 2 {
        return (0..n as u32).collect();
    }
    let budget = budget.clamp(2, n);
    let db = TrajectoryDb::new(vec![traj.clone()]);
    let mut simp = Simplification::full(&db);
    run_bottomup_db(&db, &mut simp, budget, measure);
    simp.kept(0).to_vec()
}

/// Bottom-Up over the whole database: one global min-heap of drop costs.
fn bottomup_whole(db: &TrajectoryDb, budget: usize, measure: ErrorMeasure) -> Simplification {
    let mut simp = Simplification::full(db);
    let budget = budget.max(crate::min_points(db));
    run_bottomup_db(db, &mut simp, budget, measure);
    simp
}

/// Core drop loop shared by both adaptations (the per-trajectory case is a
/// single-trajectory database).
fn run_bottomup_db(
    db: &TrajectoryDb,
    simp: &mut Simplification,
    budget: usize,
    measure: ErrorMeasure,
) {
    // Version stamps: an entry for (id, idx) is valid only if the stamp
    // matches (neighbors unchanged since push) and the point is still kept.
    let mut versions: Vec<Vec<u64>> = db
        .trajectories()
        .iter()
        .map(|t| vec![0u64; t.len()])
        .collect();
    let mut heap: LazyHeap<(TrajId, u32)> = LazyHeap::new();
    for (id, t) in db.iter() {
        for idx in 1..t.len().saturating_sub(1) as u32 {
            if let Some(c) = drop_cost(t, simp, id, idx, measure) {
                heap.push(-c, 0, (id, idx)); // negate: LazyHeap is a max-heap
            }
        }
    }
    let mut total = simp.total_points();
    while total > budget {
        let popped = heap
            .pop_current(|&(id, idx), v| versions[id][idx as usize] == v && simp.contains(id, idx));
        let Some((_, (id, idx))) = popped else { break };
        let (l, r) = simp.kept_neighbors(id, idx).expect("validated current");
        let removed = simp.remove(id, idx);
        debug_assert!(removed);
        total -= 1;
        // The bracketing neighbors' drop costs changed: re-push with fresh
        // stamps.
        let t = db.get(id);
        for nb in [l, r] {
            if simp.kept_neighbors(id, nb).is_some() {
                versions[id][nb as usize] += 1;
                if let Some(c) = drop_cost(t, simp, id, nb, measure) {
                    heap.push(-c, versions[id][nb as usize], (id, nb));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trajectory::Point;

    fn zigzag(n: usize, amp: f64) -> Trajectory {
        Trajectory::new(
            (0..n)
                .map(|i| {
                    let y = if i % 2 == 0 { 0.0 } else { amp };
                    Point::new(i as f64 * 10.0, y, i as f64)
                })
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn respects_budget_and_endpoints() {
        let t = zigzag(40, 5.0);
        for budget in [2, 7, 20, 40] {
            let kept = bottomup_one(&t, budget, ErrorMeasure::Sed);
            assert_eq!(kept.len(), budget.max(2), "exact budget expected");
            assert_eq!(kept[0], 0);
            assert_eq!(*kept.last().unwrap(), 39);
        }
    }

    #[test]
    fn drops_redundant_points_first() {
        // Straight line with one outlier: everything but the outlier is
        // free to drop, so the outlier must survive a budget of 3.
        let mut pts: Vec<Point> = (0..20)
            .map(|i| Point::new(i as f64 * 10.0, 0.0, i as f64))
            .collect();
        pts[11] = Point::new(110.0, 400.0, 11.0);
        let t = Trajectory::new(pts).unwrap();
        let kept = bottomup_one(&t, 3, ErrorMeasure::Sed);
        assert_eq!(kept, vec![0, 11, 19]);
    }

    #[test]
    fn full_budget_is_identity() {
        let t = zigzag(15, 3.0);
        let kept = bottomup_one(&t, 15, ErrorMeasure::Ped);
        assert_eq!(kept.len(), 15);
    }

    #[test]
    fn whole_adaptation_prefers_dropping_from_simple_trajectories() {
        let wild = zigzag(30, 200.0);
        let straight = Trajectory::new(
            (0..30)
                .map(|i| Point::new(i as f64 * 10.0, 0.0, i as f64))
                .collect(),
        )
        .unwrap();
        let db = TrajectoryDb::new(vec![wild, straight]);
        let bu = BottomUp::new(ErrorMeasure::Sed, Adaptation::Whole);
        let simp = bu.simplify(&db, 34);
        assert_eq!(simp.total_points(), 34);
        assert!(
            simp.kept(0).len() > simp.kept(1).len(),
            "wild {} vs straight {}",
            simp.kept(0).len(),
            simp.kept(1).len()
        );
        // The straight trajectory should be reduced to nearly endpoints.
        assert!(simp.kept(1).len() <= 4);
    }

    #[test]
    fn budget_below_floor_clamps_to_endpoints() {
        let db = TrajectoryDb::new(vec![zigzag(10, 1.0), zigzag(10, 1.0)]);
        let bu = BottomUp::new(ErrorMeasure::Sed, Adaptation::Whole);
        let simp = bu.simplify(&db, 0);
        assert_eq!(simp.total_points(), 4);
    }

    #[test]
    fn all_measures_and_adaptations_run() {
        let db = TrajectoryDb::new(vec![zigzag(25, 5.0), zigzag(12, 2.0)]);
        for m in ErrorMeasure::ALL {
            for a in [Adaptation::Each, Adaptation::Whole] {
                let simp = BottomUp::new(m, a).simplify(&db, 12);
                assert!(simp.total_points() <= 12, "{m} {a}");
            }
        }
    }

    #[test]
    fn name_matches_paper_convention() {
        assert_eq!(
            BottomUp::new(ErrorMeasure::Dad, Adaptation::Each).name(),
            "Bottom-Up(E,DAD)"
        );
    }

    #[test]
    fn bottomup_error_close_to_topdown() {
        // Both heuristics should land in the same error ballpark on a
        // benign input (sanity guard against gross implementation bugs).
        let t = zigzag(60, 5.0);
        let bu = bottomup_one(&t, 12, ErrorMeasure::Sed);
        let td = crate::topdown::topdown_one(&t, 12, ErrorMeasure::Sed);
        let e_bu = ErrorMeasure::Sed.trajectory_error(&t, &bu);
        let e_td = ErrorMeasure::Sed.trajectory_error(&t, &td);
        assert!(
            e_bu <= 3.0 * e_td + 1e-9,
            "bottom-up {e_bu} vs top-down {e_td}"
        );
    }
}
