//! Uniform sampling: keep every k-th point. Not one of the paper's 25
//! baselines, but a useful floor for sanity checks and examples — any
//! error-aware method should beat it.

use crate::adapt::{per_trajectory_budgets, per_trajectory_budgets_store};
use crate::Simplifier;
use trajectory::{PointStore, Simplification, Trajectory, TrajectoryDb};

/// The uniform-sampling baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct Uniform;

impl Simplifier for Uniform {
    fn name(&self) -> String {
        "Uniform".to_string()
    }

    fn simplify(&self, db: &TrajectoryDb, budget: usize) -> Simplification {
        let budgets = per_trajectory_budgets(db, budget);
        let kept = db
            .iter()
            .map(|(id, t)| uniform_one(t, budgets[id]))
            .collect();
        Simplification::from_kept(db, kept)
    }

    /// Native columnar path: only lengths are consulted, no AoS
    /// materialization happens.
    fn simplify_store(&self, store: &PointStore, budget: usize) -> Simplification {
        let budgets = per_trajectory_budgets_store(store, budget);
        let kept = store
            .views()
            .enumerate()
            .map(|(id, v)| uniform_indices(v.len(), budgets[id]))
            .collect();
        Simplification::from_kept_store(store, kept)
    }
}

/// Evenly spaced `budget` indices over `[0, n-1]`, endpoints included.
pub fn uniform_one(traj: &Trajectory, budget: usize) -> Vec<u32> {
    uniform_indices(traj.len(), budget)
}

/// Evenly spaced `budget` indices for a trajectory of `n` points.
pub fn uniform_indices(n: usize, budget: usize) -> Vec<u32> {
    if n <= 2 || budget >= n {
        return (0..n as u32).collect();
    }
    let budget = budget.max(2);
    let mut kept: Vec<u32> = (0..budget)
        .map(|i| ((i as f64) * (n - 1) as f64 / (budget - 1) as f64).round() as u32)
        .collect();
    kept.dedup();
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use trajectory::Point;

    fn traj(n: usize) -> Trajectory {
        Trajectory::new(
            (0..n)
                .map(|i| Point::new(i as f64, 0.0, i as f64))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn spacing_is_even() {
        let kept = uniform_one(&traj(11), 3);
        assert_eq!(kept, vec![0, 5, 10]);
    }

    #[test]
    fn budget_of_two_keeps_endpoints() {
        assert_eq!(uniform_one(&traj(50), 2), vec![0, 49]);
    }

    #[test]
    fn oversized_budget_keeps_everything() {
        assert_eq!(uniform_one(&traj(5), 100).len(), 5);
    }

    #[test]
    fn database_level_budget_is_respected() {
        let db = TrajectoryDb::new(vec![traj(100), traj(50)]);
        let simp = Uniform.simplify(&db, 15);
        assert!(simp.total_points() <= 15);
    }

    #[test]
    fn store_path_matches_aos_path() {
        let db = TrajectoryDb::new(vec![traj(100), traj(50), traj(3)]);
        let store = db.to_store();
        for budget in [7, 15, 60, 1_000] {
            assert_eq!(
                Uniform.simplify(&db, budget),
                Uniform.simplify_store(&store, budget),
                "budget {budget}"
            );
        }
    }
}
