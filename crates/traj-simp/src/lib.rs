//! Error-driven trajectory simplification (EDTS) baselines.
//!
//! The paper compares RL4QDTS against every practical EDTS algorithm,
//! adapted to databases in two ways (§V-A): **E** (simplify each trajectory
//! with a proportional budget) and **W** (treat the database as one global
//! candidate pool). This crate implements all of them:
//!
//! - [`topdown`]: Top-Down — Douglas–Peucker driven by a priority queue
//!   (Hershberger & Snoeyink);
//! - [`bottomup`]: Bottom-Up — iteratively drop the cheapest point
//!   (Marteau & Ménier);
//! - [`spansearch`]: Span-Search — direction-preserving simplification via
//!   binary search over the angular tolerance (Long et al., DAD only);
//! - [`rlts`]: RLTS+ — reinforcement-learning Bottom-Up (Wang et al.),
//!   reimplemented on `tiny-rl`;
//! - [`uniform`]: uniform every-k-th-point sampling (a sanity baseline,
//!   not part of the paper's 25).
//!
//! Each algorithm is generic over the four error measures where the
//! original supports them, yielding the paper's 25 baselines
//! (3 algorithms × 4 measures × 2 adaptations + Span-Search).

#![warn(missing_docs)]

pub mod adapt;
pub mod bottomup;
pub mod bounded;
pub mod heap;
pub mod onepass;
pub mod persist;
pub mod rlts;
pub mod spansearch;
pub mod streaming;
pub mod topdown;
pub mod uniform;

pub use adapt::{per_trajectory_budgets, Adaptation};
pub use bottomup::BottomUp;
pub use bounded::{bounded_db, bounded_one, min_eps_for_budget};
pub use onepass::OnePassSed;
pub use persist::{
    per_shard_budgets, simplify_shards, simplify_to_shard_set, simplify_to_snapshot,
    write_simplified_shard_set, write_simplified_shard_set_quantized, write_simplified_snapshot,
    write_simplified_snapshot_quantized,
};
pub use rlts::RltsPlus;
pub use spansearch::SpanSearch;
pub use streaming::{streaming_simplify, StreamingSimplifier};
pub use topdown::TopDown;
pub use uniform::Uniform;

use trajectory::{PointStore, Simplification, TrajectoryDb};

/// A database simplification algorithm: reduce `db` to at most `budget`
/// total points (every trajectory always keeps its endpoints, so the
/// effective floor is `Σ min(|T|, 2)`).
///
/// `Send + Sync` is required so experiment harnesses can evaluate many
/// methods in parallel; all implementations are plain data + trained
/// (frozen) models.
pub trait Simplifier: Send + Sync {
    /// Display name as used in the paper's figures, e.g.
    /// `"Top-Down(E,PED)"`.
    fn name(&self) -> String;

    /// Produces the simplification.
    fn simplify(&self, db: &TrajectoryDb, budget: usize) -> Simplification;

    /// Produces the simplification of a columnar store. The resulting
    /// kept-index sets line up with the store's per-trajectory views, so
    /// `simp.materialize_store(store)` (a column gather) yields `D'`
    /// without round-tripping through `Vec<Point>` trajectories.
    ///
    /// The default implementation materializes an AoS copy and delegates
    /// to [`Simplifier::simplify`]; algorithms migrate to native column
    /// walks incrementally.
    fn simplify_store(&self, store: &PointStore, budget: usize) -> Simplification {
        self.simplify(&store.to_db(), budget)
    }
}

/// Effective lower bound on the number of points any simplification keeps.
pub fn min_points(db: &TrajectoryDb) -> usize {
    db.trajectories().iter().map(|t| t.len().min(2)).sum()
}

/// [`min_points`] over columnar storage.
pub fn min_points_store(store: &PointStore) -> usize {
    store.views().map(|v| v.len().min(2)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use trajectory::{Point, Trajectory};

    #[test]
    fn min_points_counts_endpoints() {
        let db = TrajectoryDb::new(vec![
            Trajectory::new(vec![Point::new(0.0, 0.0, 0.0)]).unwrap(),
            Trajectory::new(
                (0..5)
                    .map(|i| Point::new(i as f64, 0.0, i as f64))
                    .collect(),
            )
            .unwrap(),
        ]);
        assert_eq!(min_points(&db), 3);
    }
}
