//! The two adaptations of trajectory-level EDTS algorithms to a database
//! (§V-A): **Each** ("E") simplifies every trajectory separately with a
//! proportional budget; **Whole** ("W") treats the database as one global
//! pool of insertion/drop candidates.

use trajectory::{PointStore, TrajectoryDb};

/// How a trajectory-level algorithm is adapted to a database.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Adaptation {
    /// Simplify each trajectory with budget `r·|T|` (the paper's "E").
    Each,
    /// Simplify the database as a whole with one global budget ("W").
    Whole,
}

impl std::fmt::Display for Adaptation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Adaptation::Each => write!(f, "E"),
            Adaptation::Whole => write!(f, "W"),
        }
    }
}

/// Splits a database-level budget into per-trajectory budgets for the
/// "Each" adaptation: every trajectory gets at least its two endpoints,
/// the rest is distributed proportionally to trajectory length
/// (largest-remainder rounding), and the total never exceeds
/// `max(budget, Σ min(|T|, 2))`.
pub fn per_trajectory_budgets(db: &TrajectoryDb, budget: usize) -> Vec<usize> {
    let lens: Vec<usize> = db.trajectories().iter().map(|t| t.len()).collect();
    budgets_for_lengths(&lens, budget)
}

/// [`per_trajectory_budgets`] over columnar storage (only the per-
/// trajectory lengths matter, which are offset-table differences).
pub fn per_trajectory_budgets_store(store: &PointStore, budget: usize) -> Vec<usize> {
    let lens: Vec<usize> = store.views().map(|v| v.len()).collect();
    budgets_for_lengths(&lens, budget)
}

/// Layout-independent core of the proportional budget split.
fn budgets_for_lengths(lens: &[usize], budget: usize) -> Vec<usize> {
    let n: usize = lens.iter().sum();
    let mut budgets: Vec<usize> = lens.iter().map(|&len| len.min(2)).collect();
    let floor_total: usize = budgets.iter().sum();
    if n == 0 || budget <= floor_total {
        return budgets;
    }
    let spare = budget - floor_total;
    let r = spare as f64 / n as f64;
    // Proportional shares beyond the endpoint floor, capped by capacity.
    let mut fractional: Vec<(f64, usize)> = Vec::with_capacity(lens.len());
    let mut assigned = 0usize;
    for (id, &len) in lens.iter().enumerate() {
        let capacity = len - budgets[id];
        let share = (r * len as f64).min(capacity as f64);
        let whole = share.floor() as usize;
        budgets[id] += whole;
        assigned += whole;
        fractional.push((share - whole as f64, id));
    }
    // Largest remainders get the leftover, capacity permitting.
    let mut leftover = spare.saturating_sub(assigned);
    fractional.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
    for (_, id) in fractional {
        if leftover == 0 {
            break;
        }
        if budgets[id] < lens[id] {
            budgets[id] += 1;
            leftover -= 1;
        }
    }
    budgets
}

#[cfg(test)]
mod tests {
    use super::*;
    use trajectory::{Point, Trajectory};

    fn db(lens: &[usize]) -> TrajectoryDb {
        TrajectoryDb::new(
            lens.iter()
                .map(|&n| {
                    Trajectory::new(
                        (0..n)
                            .map(|i| Point::new(i as f64, 0.0, i as f64))
                            .collect(),
                    )
                    .unwrap()
                })
                .collect(),
        )
    }

    #[test]
    fn budgets_respect_total_and_floors() {
        let db = db(&[100, 200, 700]);
        let budget = 100; // 10% of 1000
        let budgets = per_trajectory_budgets(&db, budget);
        assert!(budgets.iter().sum::<usize>() <= budget);
        assert!(budgets.iter().all(|&b| b >= 2));
        // Proportionality: the 700-point trajectory gets the biggest share.
        assert!(budgets[2] > budgets[1] && budgets[1] > budgets[0]);
    }

    #[test]
    fn tiny_budget_degrades_to_endpoints() {
        let db = db(&[50, 50]);
        let budgets = per_trajectory_budgets(&db, 1);
        assert_eq!(budgets, vec![2, 2]);
    }

    #[test]
    fn budget_larger_than_db_caps_at_lengths() {
        let db = db(&[5, 7]);
        let budgets = per_trajectory_budgets(&db, 1_000);
        assert!(budgets[0] <= 5 && budgets[1] <= 7);
        assert_eq!(budgets.iter().sum::<usize>(), 12);
    }

    #[test]
    fn single_point_trajectories_get_one() {
        let db = db(&[1, 10]);
        let budgets = per_trajectory_budgets(&db, 6);
        assert_eq!(budgets[0], 1);
        assert!(budgets[1] >= 2);
    }

    #[test]
    fn display_matches_paper_labels() {
        assert_eq!(Adaptation::Each.to_string(), "E");
        assert_eq!(Adaptation::Whole.to_string(), "W");
    }
}
