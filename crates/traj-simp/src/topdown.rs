//! Top-Down simplification: the Douglas–Peucker strategy driven by a
//! priority queue (Hershberger & Snoeyink). Start from the endpoints-only
//! simplification and repeatedly *insert* the point with the largest error
//! until the budget is reached.
//!
//! The core is generic over [`PointSeq`], so the same best-first loop
//! serves the AoS [`Trajectory`] path and the **native columnar** path
//! ([`Simplifier::simplify_store`]): the store variant walks zero-copy
//! [`TrajView`]s directly — no `Vec<Point>` trajectories are
//! materialized, no AoS round-trip.

use crate::adapt::{per_trajectory_budgets, per_trajectory_budgets_store, Adaptation};
use crate::heap::LazyHeap;
use crate::Simplifier;
use trajectory::{
    AsColumns, ErrorMeasure, PointSeq, PointStore, Simplification, TrajId, TrajView, Trajectory,
    TrajectoryDb,
};

/// The Top-Down baseline, parameterized by error measure and adaptation.
#[derive(Debug, Clone, Copy)]
pub struct TopDown {
    /// Error measure driving the insertion order.
    pub measure: ErrorMeasure,
    /// Database adaptation ("E" or "W").
    pub adaptation: Adaptation,
}

impl TopDown {
    /// Creates a Top-Down simplifier.
    pub fn new(measure: ErrorMeasure, adaptation: Adaptation) -> Self {
        Self {
            measure,
            adaptation,
        }
    }
}

impl Simplifier for TopDown {
    fn name(&self) -> String {
        format!("Top-Down({},{})", self.adaptation, self.measure)
    }

    fn simplify(&self, db: &TrajectoryDb, budget: usize) -> Simplification {
        match self.adaptation {
            Adaptation::Each => {
                let budgets = per_trajectory_budgets(db, budget);
                let kept = db
                    .iter()
                    .map(|(id, t)| topdown_one(t, budgets[id], self.measure))
                    .collect();
                Simplification::from_kept(db, kept)
            }
            Adaptation::Whole => topdown_whole(db, budget, self.measure),
        }
    }

    /// Native columnar Top-Down: the best-first loops run directly over
    /// zero-copy [`TrajView`]s — no AoS round-trip, identical kept sets
    /// to [`Simplifier::simplify`] on the equivalent database.
    fn simplify_store(&self, store: &PointStore, budget: usize) -> Simplification {
        match self.adaptation {
            Adaptation::Each => {
                let budgets = per_trajectory_budgets_store(store, budget);
                let kept = store
                    .views()
                    .enumerate()
                    .map(|(id, v)| topdown_one_seq(&v, budgets[id], self.measure))
                    .collect();
                Simplification::from_kept_store(store, kept)
            }
            Adaptation::Whole => topdown_whole_store(store, budget, self.measure),
        }
    }
}

/// Evaluates the insertable point of `(s, e)` with the largest error.
/// Returns `None` when the anchor spans a single original segment.
fn worst_insertable<S: PointSeq + ?Sized>(
    seq: &S,
    s: usize,
    e: usize,
    measure: ErrorMeasure,
) -> Option<(f64, usize)> {
    if e <= s + 1 {
        return None;
    }
    let mut best: Option<(f64, usize)> = None;
    for i in s + 1..e {
        let err = measure.point_error_seq(seq, s, e, i);
        if best.is_none_or(|(b, _)| err > b) {
            best = Some((err, i));
        }
    }
    best
}

/// Top-Down for a single trajectory under a point budget.
pub fn topdown_one(traj: &Trajectory, budget: usize, measure: ErrorMeasure) -> Vec<u32> {
    topdown_one_seq(traj, budget, measure)
}

/// Layout-agnostic core of [`topdown_one`]: the same best-first insertion
/// over any [`PointSeq`] — an AoS trajectory or a zero-copy column view.
pub fn topdown_one_seq<S: PointSeq + ?Sized>(
    seq: &S,
    budget: usize,
    measure: ErrorMeasure,
) -> Vec<u32> {
    let n = seq.n_points();
    if n <= 2 {
        return (0..n as u32).collect();
    }
    let budget = budget.clamp(2, n);
    let mut kept: Vec<u32> = vec![0, n as u32 - 1];
    // Max-heap of (error, (s, e, insert_idx)); segments are immutable once
    // pushed (they are only ever split after being popped), so no versions
    // are needed.
    let mut heap: LazyHeap<(usize, usize, usize)> = LazyHeap::new();
    if let Some((err, idx)) = worst_insertable(seq, 0, n - 1, measure) {
        heap.push(err, 0, (0, n - 1, idx));
    }
    while kept.len() < budget {
        let Some((_, (s, e, idx))) = heap.pop_current(|_, _| true) else {
            break;
        };
        match kept.binary_search(&(idx as u32)) {
            Ok(_) => unreachable!("insertable points are never already kept"),
            Err(pos) => kept.insert(pos, idx as u32),
        }
        if let Some((err, i)) = worst_insertable(seq, s, idx, measure) {
            heap.push(err, 0, (s, idx, i));
        }
        if let Some((err, i)) = worst_insertable(seq, idx, e, measure) {
            heap.push(err, 0, (idx, e, i));
        }
    }
    kept
}

/// Top-Down over the whole database: one global heap, insert the globally
/// worst point anywhere until the budget is exhausted.
fn topdown_whole(db: &TrajectoryDb, budget: usize, measure: ErrorMeasure) -> Simplification {
    let mut simp = Simplification::most_simplified(db);
    let mut total = simp.total_points();
    let budget = budget.max(total);
    let mut heap: LazyHeap<(TrajId, usize, usize, usize)> = LazyHeap::new();
    for (id, t) in db.iter() {
        if t.len() > 2 {
            if let Some((err, idx)) = worst_insertable(t, 0, t.len() - 1, measure) {
                heap.push(err, 0, (id, 0, t.len() - 1, idx));
            }
        }
    }
    while total < budget {
        let Some((_, (id, s, e, idx))) = heap.pop_current(|_, _| true) else {
            break;
        };
        let inserted = simp.insert(id, idx as u32);
        debug_assert!(inserted);
        total += 1;
        let t = db.get(id);
        if let Some((err, i)) = worst_insertable(t, s, idx, measure) {
            heap.push(err, 0, (id, s, idx, i));
        }
        if let Some((err, i)) = worst_insertable(t, idx, e, measure) {
            heap.push(err, 0, (id, idx, e, i));
        }
    }
    simp
}

/// [`topdown_whole`] walking columns natively: the per-trajectory point
/// access is a [`TrajView`] sub-slice lookup instead of a pointer chase
/// through `Vec<Trajectory>`. Heap order, tie-breaking, and therefore the
/// kept sets are identical to the AoS path.
fn topdown_whole_store(store: &PointStore, budget: usize, measure: ErrorMeasure) -> Simplification {
    let mut simp = Simplification::most_simplified_store(store);
    let mut total = simp.total_points();
    let budget = budget.max(total);
    let mut heap: LazyHeap<(TrajId, usize, usize, usize)> = LazyHeap::new();
    for (id, v) in AsColumns::iter(store) {
        if v.len() > 2 {
            if let Some((err, idx)) = worst_insertable(&v, 0, v.len() - 1, measure) {
                heap.push(err, 0, (id, 0, v.len() - 1, idx));
            }
        }
    }
    while total < budget {
        let Some((_, (id, s, e, idx))) = heap.pop_current(|_, _| true) else {
            break;
        };
        let inserted = simp.insert(id, idx as u32);
        debug_assert!(inserted);
        total += 1;
        let v: TrajView<'_> = store.view(id);
        if let Some((err, i)) = worst_insertable(&v, s, idx, measure) {
            heap.push(err, 0, (id, s, idx, i));
        }
        if let Some((err, i)) = worst_insertable(&v, idx, e, measure) {
            heap.push(err, 0, (id, idx, e, i));
        }
    }
    simp
}

#[cfg(test)]
mod tests {
    use super::*;
    use trajectory::Point;

    fn zigzag(n: usize, amp: f64) -> Trajectory {
        Trajectory::new(
            (0..n)
                .map(|i| {
                    let y = if i % 2 == 0 { 0.0 } else { amp };
                    Point::new(i as f64 * 10.0, y, i as f64)
                })
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn respects_budget() {
        let t = zigzag(50, 5.0);
        for budget in [2, 5, 10, 50, 100] {
            let kept = topdown_one(&t, budget, ErrorMeasure::Sed);
            assert!(kept.len() <= budget.clamp(2, 50));
            assert_eq!(kept[0], 0);
            assert_eq!(*kept.last().unwrap(), 49);
        }
    }

    #[test]
    fn error_shrinks_from_coarse_to_fine() {
        // Greedy refinement is not strictly monotone under SED (splitting a
        // segment can re-anchor points less favourably), but the trend must
        // hold: a generous budget beats the endpoints-only baseline, and
        // the full budget is lossless.
        let t = zigzag(60, 8.0);
        let coarse = ErrorMeasure::Sed.trajectory_error(&t, &topdown_one(&t, 2, ErrorMeasure::Sed));
        let fine = ErrorMeasure::Sed.trajectory_error(&t, &topdown_one(&t, 40, ErrorMeasure::Sed));
        let full = ErrorMeasure::Sed.trajectory_error(&t, &topdown_one(&t, 60, ErrorMeasure::Sed));
        assert!(fine <= coarse + 1e-9, "fine {fine} vs coarse {coarse}");
        assert!(full < 1e-9, "full budget must be lossless");
    }

    #[test]
    fn budgets_grow_kept_sets_as_prefixes() {
        // Best-first insertion is deterministic, so a larger budget's kept
        // set contains the smaller one's.
        let t = zigzag(60, 8.0);
        let small = topdown_one(&t, 10, ErrorMeasure::Sed);
        let large = topdown_one(&t, 25, ErrorMeasure::Sed);
        for idx in &small {
            assert!(large.contains(idx), "index {idx} lost when budget grew");
        }
    }

    #[test]
    fn picks_the_outlier_first() {
        // A flat line with one huge detour: the first inserted point must be
        // the detour.
        let mut pts: Vec<Point> = (0..20)
            .map(|i| Point::new(i as f64 * 10.0, 0.0, i as f64))
            .collect();
        pts[7] = Point::new(70.0, 500.0, 7.0);
        let t = Trajectory::new(pts).unwrap();
        let kept = topdown_one(&t, 3, ErrorMeasure::Sed);
        assert_eq!(kept, vec![0, 7, 19]);
    }

    #[test]
    fn whole_adaptation_allocates_budget_to_complex_trajectories() {
        // One wild trajectory + one straight line: "W" must spend almost the
        // whole spare budget on the wild one.
        let wild = zigzag(40, 100.0);
        let straight = Trajectory::new(
            (0..40)
                .map(|i| Point::new(i as f64 * 10.0, 0.0, i as f64))
                .collect(),
        )
        .unwrap();
        let db = TrajectoryDb::new(vec![wild, straight]);
        let td = TopDown::new(ErrorMeasure::Sed, Adaptation::Whole);
        let simp = td.simplify(&db, 14);
        assert!(simp.total_points() <= 14);
        assert!(
            simp.kept(0).len() >= simp.kept(1).len() + 6,
            "wild {} vs straight {}",
            simp.kept(0).len(),
            simp.kept(1).len()
        );
    }

    #[test]
    fn each_adaptation_splits_proportionally() {
        let db = TrajectoryDb::new(vec![zigzag(100, 5.0), zigzag(20, 5.0)]);
        let td = TopDown::new(ErrorMeasure::Ped, Adaptation::Each);
        let simp = td.simplify(&db, 24);
        assert!(simp.total_points() <= 24);
        assert!(simp.kept(0).len() > simp.kept(1).len());
    }

    #[test]
    fn name_matches_paper_convention() {
        assert_eq!(
            TopDown::new(ErrorMeasure::Ped, Adaptation::Each).name(),
            "Top-Down(E,PED)"
        );
        assert_eq!(
            TopDown::new(ErrorMeasure::Sad, Adaptation::Whole).name(),
            "Top-Down(W,SAD)"
        );
    }

    #[test]
    fn simplify_store_matches_aos_for_all_measures_and_adaptations() {
        // The native columnar path must produce the exact kept sets of
        // the AoS path: same best-first order, same tie-breaking.
        let db = TrajectoryDb::new(vec![zigzag(40, 8.0), zigzag(25, 3.0), zigzag(7, 30.0)]);
        let store = db.to_store();
        for m in ErrorMeasure::ALL {
            for a in [Adaptation::Each, Adaptation::Whole] {
                for budget in [6, 20, 50, 200] {
                    let td = TopDown::new(m, a);
                    assert_eq!(
                        td.simplify_store(&store, budget),
                        td.simplify(&db, budget),
                        "{m} {a} budget {budget}"
                    );
                }
            }
        }
    }

    #[test]
    fn all_measures_run() {
        let db = TrajectoryDb::new(vec![zigzag(30, 5.0)]);
        for m in ErrorMeasure::ALL {
            for a in [Adaptation::Each, Adaptation::Whole] {
                let simp = TopDown::new(m, a).simplify(&db, 10);
                assert!(simp.total_points() <= 10, "{m} {a}");
                assert!(simp.total_points() >= 2);
            }
        }
    }
}
