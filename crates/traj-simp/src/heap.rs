//! Small heap utilities shared by the simplifiers: a total-ordered f64
//! wrapper and a lazy-deletion priority queue keyed by version counters.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// `f64` with a total order (via `f64::total_cmp`) so it can live in a
/// `BinaryHeap`. NaNs sort after +inf and should never be produced by the
/// error measures, but the ordering stays well-defined if one appears.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrdF64(pub f64);

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// A max-heap entry: priority + payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Entry<T> {
    /// Priority (max-heap: largest pops first).
    pub priority: OrdF64,
    /// Version stamp for lazy deletion; stale entries are skipped on pop.
    pub version: u64,
    /// Payload.
    pub payload: T,
}

impl<T: Eq> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T: Eq> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.priority.cmp(&other.priority)
    }
}

/// Max-heap with lazy deletion: callers bump an external version when a
/// payload's priority changes and push a fresh entry; stale pops are
/// filtered by the `is_current` predicate.
#[derive(Debug, Clone)]
pub struct LazyHeap<T: Eq> {
    heap: BinaryHeap<Entry<T>>,
}

impl<T: Eq> Default for LazyHeap<T> {
    fn default() -> Self {
        Self {
            heap: BinaryHeap::new(),
        }
    }
}

impl<T: Eq> LazyHeap<T> {
    /// Empty heap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of entries, including stale ones.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no entries remain (stale or fresh).
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Pushes an entry.
    pub fn push(&mut self, priority: f64, version: u64, payload: T) {
        self.heap.push(Entry {
            priority: OrdF64(priority),
            version,
            payload,
        });
    }

    /// Pops the highest-priority entry whose version is still current.
    pub fn pop_current(&mut self, mut is_current: impl FnMut(&T, u64) -> bool) -> Option<(f64, T)> {
        while let Some(e) = self.heap.pop() {
            if is_current(&e.payload, e.version) {
                return Some((e.priority.0, e.payload));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordf64_total_order() {
        let mut v = [
            OrdF64(3.0),
            OrdF64(-1.0),
            OrdF64(f64::INFINITY),
            OrdF64(0.0),
        ];
        v.sort();
        assert_eq!(v[0], OrdF64(-1.0));
        assert_eq!(v[3], OrdF64(f64::INFINITY));
    }

    #[test]
    fn lazy_heap_pops_max_first() {
        let mut h = LazyHeap::new();
        h.push(1.0, 0, "a");
        h.push(5.0, 0, "b");
        h.push(3.0, 0, "c");
        assert_eq!(h.pop_current(|_, _| true), Some((5.0, "b")));
        assert_eq!(h.pop_current(|_, _| true), Some((3.0, "c")));
    }

    #[test]
    fn stale_entries_are_skipped() {
        let mut h = LazyHeap::new();
        h.push(5.0, 0, "x");
        h.push(2.0, 1, "x");
        // Only version 1 is current.
        let popped = h.pop_current(|_, v| v == 1);
        assert_eq!(popped, Some((2.0, "x")));
        assert!(h.pop_current(|_, v| v == 1).is_none());
    }

    #[test]
    fn min_heap_via_negation() {
        // The simplifiers use negated priorities for min-behaviour.
        let mut h = LazyHeap::new();
        h.push(-1.0, 0, "cheap");
        h.push(-9.0, 0, "pricey");
        assert_eq!(h.pop_current(|_, _| true).unwrap().1, "cheap");
    }
}
