//! RLTS+ (Wang, Long, Cong — ICDE 2021): reinforcement-learning
//! trajectory simplification. Adopts the Bottom-Up strategy but lets a
//! learned DQN policy choose which of the `K` cheapest candidate points to
//! drop, instead of always dropping the cheapest.
//!
//! MDP (following the published design): the state holds the drop costs of
//! the `K` current cheapest candidates (ascending, whitened); the action
//! picks one of them; the reward is the negative increase of the running
//! maximum error, which telescopes to the negative final trajectory error —
//! the EDTS objective. Training is per-trajectory (RLTS+ is a
//! trajectory-level technique); the E/W adaptations only change how the
//! trained policy is *applied* to a database.

use crate::adapt::{per_trajectory_budgets, Adaptation};
use crate::heap::LazyHeap;
use crate::Simplifier;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tiny_rl::{Dqn, DqnConfig, Transition};
use trajectory::{ErrorMeasure, Simplification, TrajId, TrajectoryDb};

/// The RLTS+ baseline.
#[derive(Debug, Clone)]
pub struct RltsPlus {
    /// Error measure the policy was trained to minimize.
    pub measure: ErrorMeasure,
    /// Database adaptation ("E" or "W").
    pub adaptation: Adaptation,
    /// Number of cheapest candidates the policy chooses among.
    pub k: usize,
    agent: Dqn,
}

/// Training options for RLTS+.
#[derive(Debug, Clone, Copy)]
pub struct RltsTrainConfig {
    /// Number of training episodes (one trajectory each).
    pub episodes: usize,
    /// Compression ratio used during training episodes.
    pub ratio: f64,
    /// DQN hyperparameters.
    pub dqn: DqnConfig,
}

impl Default for RltsTrainConfig {
    fn default() -> Self {
        Self {
            episodes: 60,
            ratio: 0.1,
            dqn: DqnConfig::default(),
        }
    }
}

impl RltsPlus {
    /// Trains an RLTS+ policy on trajectories sampled from `train_db`.
    pub fn train(
        measure: ErrorMeasure,
        adaptation: Adaptation,
        k: usize,
        train_db: &TrajectoryDb,
        config: &RltsTrainConfig,
        seed: u64,
    ) -> Self {
        assert!(k >= 1);
        let mut agent = Dqn::new(&[k, 25, k], config.dqn, seed);
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(1));
        for _ in 0..config.episodes {
            if train_db.is_empty() {
                break;
            }
            let id = rng.gen_range(0..train_db.len());
            let traj = train_db.get(id);
            if traj.len() < 4 {
                continue;
            }
            let budget = ((traj.len() as f64 * config.ratio) as usize).max(2);
            let single = TrajectoryDb::new(vec![traj.clone()]);
            let mut simp = Simplification::full(&single);
            run_policy_drop(&single, &mut simp, budget, measure, k, &mut agent, true);
        }
        agent.freeze();
        Self {
            measure,
            adaptation,
            k,
            agent,
        }
    }

    /// Wraps an already-trained agent (deserialization).
    pub fn from_agent(measure: ErrorMeasure, adaptation: Adaptation, k: usize, agent: Dqn) -> Self {
        Self {
            measure,
            adaptation,
            k,
            agent,
        }
    }

    /// Re-targets the trained policy at the other adaptation without
    /// retraining (the policy itself is trajectory-level).
    pub fn with_adaptation(&self, adaptation: Adaptation) -> Self {
        let mut c = self.clone();
        c.adaptation = adaptation;
        c
    }
}

impl Simplifier for RltsPlus {
    fn name(&self) -> String {
        format!("RLTS+({},{})", self.adaptation, self.measure)
    }

    fn simplify(&self, db: &TrajectoryDb, budget: usize) -> Simplification {
        // The trained agent is cloned so inference stays `&self` and
        // repeated calls are independent and deterministic.
        let mut agent = self.agent.clone();
        agent.freeze();
        match self.adaptation {
            Adaptation::Each => {
                let budgets = per_trajectory_budgets(db, budget);
                let mut kept = Vec::with_capacity(db.len());
                for (id, t) in db.iter() {
                    let single = TrajectoryDb::new(vec![t.clone()]);
                    let mut simp = Simplification::full(&single);
                    run_policy_drop(
                        &single,
                        &mut simp,
                        budgets[id].clamp(2, t.len()),
                        self.measure,
                        self.k,
                        &mut agent,
                        false,
                    );
                    kept.push(simp.kept(0).to_vec());
                }
                Simplification::from_kept(db, kept)
            }
            Adaptation::Whole => {
                let mut simp = Simplification::full(db);
                let budget = budget.max(crate::min_points(db));
                run_policy_drop(
                    db,
                    &mut simp,
                    budget,
                    self.measure,
                    self.k,
                    &mut agent,
                    false,
                );
                simp
            }
        }
    }
}

/// Drop cost of a kept interior point (Eq. 1 error of the merged anchor).
fn drop_cost(
    db: &TrajectoryDb,
    simp: &Simplification,
    id: TrajId,
    idx: u32,
    m: ErrorMeasure,
) -> Option<f64> {
    let (l, r) = simp.kept_neighbors(id, idx)?;
    Some(m.segment_error(db.get(id), l as usize, r as usize))
}

/// The shared Bottom-Up-with-a-policy loop. With `learn = true` it explores
/// ε-greedily, stores transitions, and trains the agent; otherwise it acts
/// greedily.
fn run_policy_drop(
    db: &TrajectoryDb,
    simp: &mut Simplification,
    budget: usize,
    measure: ErrorMeasure,
    k: usize,
    agent: &mut Dqn,
    learn: bool,
) {
    let mut versions: Vec<Vec<u64>> = db
        .trajectories()
        .iter()
        .map(|t| vec![0u64; t.len()])
        .collect();
    let mut heap: LazyHeap<(TrajId, u32)> = LazyHeap::new();
    for (id, t) in db.iter() {
        for idx in 1..t.len().saturating_sub(1) as u32 {
            if let Some(c) = drop_cost(db, simp, id, idx, measure) {
                heap.push(-c, 0, (id, idx));
            }
        }
    }

    let mut total = simp.total_points();
    let mut running_err = 0.0f64;
    // Pending (state, action) waiting for the next state to complete a
    // transition.
    let mut pending: Option<(Vec<f64>, usize, f64)> = None;

    while total > budget {
        // Pop up to K currently-valid cheapest candidates.
        let mut candidates: Vec<(f64, (TrajId, u32))> = Vec::with_capacity(k);
        while candidates.len() < k {
            let popped = heap.pop_current(|&(id, idx), v| {
                versions[id][idx as usize] == v && simp.contains(id, idx)
            });
            match popped {
                Some((neg_cost, payload)) => candidates.push((-neg_cost, payload)),
                None => break,
            }
        }
        if candidates.is_empty() {
            break;
        }
        // State: the K costs ascending, padded with the worst cost.
        let pad = candidates.last().expect("non-empty").0;
        let mut raw_state: Vec<f64> = candidates.iter().map(|(c, _)| *c).collect();
        raw_state.resize(k, pad);
        let state = agent.whiten(&raw_state, learn);
        let mut mask = vec![false; k];
        for m in mask.iter_mut().take(candidates.len()) {
            *m = true;
        }

        // Close the pending transition now that its successor is known.
        if learn {
            if let Some((ps, pa, pr)) = pending.take() {
                agent.remember(Transition {
                    state: ps,
                    action: pa,
                    reward: pr,
                    next_state: Some(state.clone()),
                    next_mask: mask.clone(),
                });
                agent.train_step();
            }
        }

        let action = if learn {
            agent.select_action(&state, &mask)
        } else {
            agent.greedy_action(&state, &mask)
        };
        let (cost, (id, idx)) = candidates[action.min(candidates.len() - 1)];

        // Push back the unchosen candidates (still valid, same versions).
        for (i, &(c, payload)) in candidates.iter().enumerate() {
            if i != action.min(candidates.len() - 1) {
                heap.push(-c, versions[payload.0][payload.1 as usize], payload);
            }
        }

        let (l, r) = simp.kept_neighbors(id, idx).expect("candidate is current");
        let removed = simp.remove(id, idx);
        debug_assert!(removed);
        total -= 1;
        for nb in [l, r] {
            if simp.kept_neighbors(id, nb).is_some() {
                versions[id][nb as usize] += 1;
                if let Some(c) = drop_cost(db, simp, id, nb, measure) {
                    heap.push(-c, versions[id][nb as usize], (id, nb));
                }
            }
        }

        if learn {
            // Reward: negative increase of the running max error.
            let new_err = running_err.max(cost);
            let reward = running_err - new_err;
            running_err = new_err;
            pending = Some((state, action, reward));
        }
    }

    // Terminal transition.
    if learn {
        if let Some((ps, pa, pr)) = pending.take() {
            agent.remember(Transition {
                state: ps,
                action: pa,
                reward: pr,
                next_state: None,
                next_mask: vec![],
            });
            agent.train_step();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trajectory::gen::{generate, DatasetSpec, Scale};
    use trajectory::{Point, Trajectory};

    fn train_db() -> TrajectoryDb {
        generate(&DatasetSpec::geolife(Scale::Smoke), 11)
    }

    fn trained() -> RltsPlus {
        let cfg = RltsTrainConfig {
            episodes: 10,
            ..RltsTrainConfig::default()
        };
        RltsPlus::train(
            ErrorMeasure::Sed,
            Adaptation::Each,
            3,
            &train_db(),
            &cfg,
            42,
        )
    }

    #[test]
    fn respects_budget_each() {
        let rlts = trained();
        let db = train_db();
        let budget = db.total_points() / 10;
        let simp = rlts.simplify(&db, budget);
        assert!(simp.total_points() <= budget.max(crate::min_points(&db)));
        for (id, t) in db.iter() {
            assert_eq!(simp.kept(id)[0], 0);
            assert_eq!(*simp.kept(id).last().unwrap(), t.len() as u32 - 1);
        }
    }

    #[test]
    fn respects_budget_whole() {
        let rlts = trained().with_adaptation(Adaptation::Whole);
        let db = train_db();
        let budget = db.total_points() / 8;
        let simp = rlts.simplify(&db, budget);
        assert!(simp.total_points() <= budget.max(crate::min_points(&db)));
    }

    #[test]
    fn inference_is_deterministic() {
        let rlts = trained();
        let db = train_db();
        let a = rlts.simplify(&db, db.total_points() / 10);
        let b = rlts.simplify(&db, db.total_points() / 10);
        assert_eq!(a, b);
    }

    #[test]
    fn error_is_in_bottomup_ballpark() {
        // The learned policy chooses among the K cheapest drops, so its
        // error can't be catastrophically worse than plain Bottom-Up.
        let rlts = trained();
        let t = Trajectory::new(
            (0..100)
                .map(|i| {
                    let y = if i % 7 == 0 { 50.0 } else { (i % 3) as f64 };
                    Point::new(i as f64 * 10.0, y, i as f64)
                })
                .collect(),
        )
        .unwrap();
        let db = TrajectoryDb::new(vec![t.clone()]);
        let simp = rlts.simplify(&db, 20);
        let e_rl = ErrorMeasure::Sed.trajectory_error(&t, simp.kept(0));
        let bu = crate::bottomup::bottomup_one(&t, 20, ErrorMeasure::Sed);
        let e_bu = ErrorMeasure::Sed.trajectory_error(&t, &bu);
        assert!(e_rl <= 5.0 * e_bu + 1.0, "rlts {e_rl} vs bottom-up {e_bu}");
    }

    #[test]
    fn name_matches_paper_convention() {
        assert_eq!(trained().name(), "RLTS+(E,SED)");
        assert_eq!(
            trained().with_adaptation(Adaptation::Whole).name(),
            "RLTS+(W,SED)"
        );
    }
}
