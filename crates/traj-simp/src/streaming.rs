//! Online (streaming) trajectory simplification — SQUISH-E-style
//! (Muckell et al., GeoInformatica 2014).
//!
//! The paper focuses on the batch mode but surveys the online mode, where
//! points arrive one at a time and dropped points are gone forever. This
//! module provides that substrate: a bounded-buffer simplifier that keeps
//! at most `capacity` points per trajectory at any moment, always dropping
//! the buffered point whose removal introduces the least SED — with the
//! classic neighbour compensation so repeated drops in the same area
//! accumulate cost instead of being free.

use crate::heap::LazyHeap;
use trajectory::{error::sed, Point, Trajectory};

/// Streaming simplifier for one trajectory.
///
/// Feed points in time order with [`StreamingSimplifier::push`]; at any
/// moment [`StreamingSimplifier::current`] yields the retained points
/// (always including the first and the latest).
#[derive(Debug, Clone)]
pub struct StreamingSimplifier {
    capacity: usize,
    /// Buffered points with their accumulated drop-cost compensation.
    points: Vec<Buffered>,
    /// Monotone id for heap staleness checks.
    versions: Vec<u64>,
    heap: LazyHeap<usize>, // payload = slot index into `points`
    next_slot: usize,
}

#[derive(Debug, Clone, Copy)]
struct Buffered {
    p: Point,
    /// SQUISH's π: cost transferred from already-dropped neighbours.
    compensation: f64,
    /// Neighbour links (slot indices), usize::MAX = none.
    prev: usize,
    next: usize,
    alive: bool,
}

const NONE: usize = usize::MAX;

impl StreamingSimplifier {
    /// A streaming simplifier holding at most `capacity ≥ 2` points.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 2, "need room for at least the endpoints");
        Self {
            capacity,
            points: Vec::new(),
            versions: Vec::new(),
            heap: LazyHeap::new(),
            next_slot: 0,
        }
    }

    /// Number of currently buffered points.
    pub fn len(&self) -> usize {
        self.points.iter().filter(|b| b.alive).count()
    }

    /// True before any point arrived.
    pub fn is_empty(&self) -> bool {
        self.points.iter().all(|b| !b.alive)
    }

    /// Feeds the next point (must be ≥ the previous point in time).
    pub fn push(&mut self, p: Point) {
        let slot = self.next_slot;
        self.next_slot += 1;
        let prev = self.last_alive();
        self.points.push(Buffered {
            p,
            compensation: 0.0,
            prev,
            next: NONE,
            alive: true,
        });
        self.versions.push(0);
        if prev != NONE {
            self.points[prev].next = slot;
            // The previous tail just became interior: give it a drop cost.
            self.requeue(prev);
        }
        if self.len() > self.capacity {
            self.drop_cheapest();
        }
    }

    /// The retained points, time-ordered, as a lazy walk over the buffer's
    /// neighbour links — no `Vec<Point>` is allocated per call. Collect
    /// with [`StreamingSimplifier::finish`] (or `.collect()`) when an
    /// owned sequence is needed.
    pub fn current(&self) -> impl Iterator<Item = Point> + '_ {
        let mut slot = self.first_alive();
        std::iter::from_fn(move || {
            if slot == NONE {
                return None;
            }
            let p = self.points[slot].p;
            slot = self.points[slot].next;
            Some(p)
        })
    }

    /// Finalizes into a [`Trajectory`] (None when < 1 point was fed).
    pub fn finish(&self) -> Option<Trajectory> {
        Trajectory::new(self.current().collect())
    }

    fn first_alive(&self) -> usize {
        self.points.iter().position(|b| b.alive).unwrap_or(NONE)
    }

    fn last_alive(&self) -> usize {
        match self.points.iter().rposition(|b| b.alive) {
            Some(i) => i,
            None => NONE,
        }
    }

    /// Drop cost of interior slot `i`: compensation + SED of `p_i` against
    /// the segment linking its current neighbours.
    fn drop_cost(&self, i: usize) -> Option<f64> {
        let b = &self.points[i];
        if !b.alive || b.prev == NONE || b.next == NONE {
            return None;
        }
        let cost = b.compensation + sed(&self.points[b.prev].p, &self.points[b.next].p, &b.p);
        Some(cost)
    }

    fn requeue(&mut self, i: usize) {
        if let Some(cost) = self.drop_cost(i) {
            self.versions[i] += 1;
            self.heap.push(-cost, self.versions[i], i);
        }
    }

    fn drop_cheapest(&mut self) {
        let points = &self.points;
        let versions = &self.versions;
        let popped = self.heap.pop_current(|&i, v| {
            let b = &points[i];
            b.alive && versions[i] == v && b.prev != NONE && b.next != NONE
        });
        let Some((neg_cost, i)) = popped else { return };
        let cost = -neg_cost;
        let (prev, next) = (self.points[i].prev, self.points[i].next);
        self.points[i].alive = false;
        self.points[prev].next = next;
        self.points[next].prev = prev;
        // SQUISH compensation: neighbours inherit the dropped cost so
        // error cannot silently accumulate.
        self.points[prev].compensation += cost;
        self.points[next].compensation += cost;
        self.requeue(prev);
        self.requeue(next);
    }
}

/// Convenience: streams a whole trajectory through a buffer of
/// `capacity` and returns the simplified result.
pub fn streaming_simplify(traj: &Trajectory, capacity: usize) -> Trajectory {
    let mut s = StreamingSimplifier::new(capacity);
    for p in traj.points() {
        s.push(*p);
    }
    s.finish().expect("non-empty input")
}

#[cfg(test)]
mod tests {
    use super::*;
    use trajectory::ErrorMeasure;

    fn traj(n: usize, amp: f64) -> Trajectory {
        Trajectory::new(
            (0..n)
                .map(|i| {
                    let y = if i % 5 == 0 { amp } else { 0.0 };
                    Point::new(i as f64 * 10.0, y, i as f64)
                })
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn buffer_never_exceeds_capacity() {
        let mut s = StreamingSimplifier::new(8);
        for i in 0..100 {
            s.push(Point::new(i as f64, (i % 3) as f64, i as f64));
            assert!(s.len() <= 8, "buffer overflow at {i}");
        }
        assert_eq!(s.len(), 8);
    }

    #[test]
    fn keeps_first_and_latest() {
        let t = traj(60, 50.0);
        let out = streaming_simplify(&t, 6);
        assert_eq!(out.first(), t.first());
        assert_eq!(out.last(), t.last());
        assert_eq!(out.len(), 6);
    }

    #[test]
    fn output_is_time_ordered_subset() {
        let t = traj(80, 20.0);
        let out = streaming_simplify(&t, 10);
        assert!(out.points().windows(2).all(|w| w[0].t < w[1].t));
        for p in out.points() {
            assert!(t.points().iter().any(|q| q == p), "invented point {p}");
        }
    }

    #[test]
    fn current_is_a_lazy_walk_matching_finish() {
        let mut s = StreamingSimplifier::new(4);
        for i in 0..10 {
            s.push(Point::new(i as f64, (i % 2) as f64, i as f64));
        }
        // Two traversals of the same state agree (the iterator borrows, it
        // does not drain), and finish() sees the identical sequence.
        let a: Vec<Point> = s.current().collect();
        let b: Vec<Point> = s.current().collect();
        assert_eq!(a, b);
        assert_eq!(a.len(), s.len());
        assert_eq!(s.finish().unwrap().points(), &a[..]);
    }

    #[test]
    fn capacity_at_input_size_is_lossless() {
        let t = traj(15, 9.0);
        let out = streaming_simplify(&t, 15);
        assert_eq!(out.points(), t.points());
    }

    #[test]
    fn online_error_is_worse_than_batch_but_bounded() {
        // The streaming simplifier can't revisit dropped points, so batch
        // Bottom-Up at the same size must be at least as good — but the
        // stream should stay within a small factor on benign input.
        let t = traj(100, 15.0);
        let out = streaming_simplify(&t, 12);
        let kept_stream: Vec<u32> = out
            .points()
            .iter()
            .map(|p| t.points().iter().position(|q| q == p).unwrap() as u32)
            .collect();
        let e_stream = ErrorMeasure::Sed.trajectory_error(&t, &kept_stream);
        let kept_batch = crate::bottomup::bottomup_one(&t, 12, ErrorMeasure::Sed);
        let e_batch = ErrorMeasure::Sed.trajectory_error(&t, &kept_batch);
        assert!(
            e_batch <= e_stream + 1e-9,
            "batch must win: {e_batch} vs {e_stream}"
        );
        assert!(
            e_stream <= 10.0 * e_batch + 20.0,
            "stream unreasonably bad: {e_stream}"
        );
    }

    #[test]
    fn prefers_keeping_spikes() {
        // A flat run with one big spike: the spike should survive a
        // tiny buffer (its drop cost dominates).
        let mut pts: Vec<Point> = (0..50)
            .map(|i| Point::new(i as f64 * 10.0, 0.0, i as f64))
            .collect();
        pts[25] = Point::new(250.0, 300.0, 25.0);
        let t = Trajectory::new(pts).unwrap();
        let out = streaming_simplify(&t, 5);
        assert!(
            out.points().iter().any(|p| p.y == 300.0),
            "spike dropped: {:?}",
            out.points()
        );
    }

    #[test]
    #[should_panic(expected = "at least the endpoints")]
    fn capacity_one_is_rejected() {
        let _ = StreamingSimplifier::new(1);
    }
}
