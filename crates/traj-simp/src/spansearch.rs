//! Span-Search (Long, Wong, Jagadish — PVLDB 2014): direction-preserving
//! trajectory simplification. Designed specifically for the DAD error:
//! binary-search the angular tolerance ε and greedily cover the trajectory
//! with maximal *spans* whose direction constraints remain satisfiable.
//!
//! A span `p_s..p_e` is feasible at tolerance ε when some heading θ exists
//! with `angle_diff(θ, dir(p_i, p_{i+1})) ≤ ε` for all `i ∈ [s, e)` *and*
//! the anchor's own heading `dir(p_s, p_e)` satisfies all constraints —
//! tracked incrementally as an intersection of angular intervals.
//!
//! Only the "E" adaptation exists (the paper notes "W" is not possible:
//! the greedy span cover is inherently per-trajectory).

use crate::adapt::per_trajectory_budgets;
use crate::Simplifier;
use trajectory::{geom, Simplification, Trajectory, TrajectoryDb};

/// The Span-Search baseline (DAD, "E" adaptation).
#[derive(Debug, Clone, Copy, Default)]
pub struct SpanSearch;

impl Simplifier for SpanSearch {
    fn name(&self) -> String {
        "Span-Search".to_string()
    }

    fn simplify(&self, db: &TrajectoryDb, budget: usize) -> Simplification {
        let budgets = per_trajectory_budgets(db, budget);
        let kept = db
            .iter()
            .map(|(id, t)| spansearch_one(t, budgets[id]))
            .collect();
        Simplification::from_kept(db, kept)
    }
}

/// Simplifies one trajectory to at most `budget` points, minimizing the
/// DAD tolerance by binary search over ε ∈ [0, π].
pub fn spansearch_one(traj: &Trajectory, budget: usize) -> Vec<u32> {
    let n = traj.len();
    if n <= 2 {
        return (0..n as u32).collect();
    }
    let budget = budget.clamp(2, n);
    // Feasibility is monotone in ε: a larger tolerance allows longer spans.
    let mut lo = 0.0f64;
    let mut hi = std::f64::consts::PI;
    let mut best = greedy_cover(traj, hi);
    for _ in 0..40 {
        let mid = 0.5 * (lo + hi);
        let cover = greedy_cover(traj, mid);
        if cover.len() <= budget {
            best = cover;
            hi = mid;
        } else {
            lo = mid;
        }
    }
    best
}

/// Greedy maximal-span cover at tolerance `eps`: from each start point,
/// extend the span while the angular constraint intersection stays
/// non-empty and contains the anchor's own heading.
fn greedy_cover(traj: &Trajectory, eps: f64) -> Vec<u32> {
    let n = traj.len();
    let pts = traj.points();
    // At ε ≥ π every heading satisfies every constraint (angle_diff ≤ π),
    // and the linear interval unwrapping below is only valid for ε < π.
    if eps >= std::f64::consts::PI {
        return vec![0, n as u32 - 1];
    }
    let mut kept: Vec<u32> = vec![0];
    let mut s = 0usize;
    while s < n - 1 {
        // Interval intersection of [d_i - eps, d_i + eps], unwrapped
        // around the first segment's heading to avoid circular logic.
        let base = geom::direction(&pts[s], &pts[s + 1]);
        let mut lo = -eps;
        let mut hi = eps;
        let mut e = s + 1;
        // Invariant: span (s, e) is feasible.
        while e < n - 1 {
            let next = e + 1;
            let d = unwrap_near(geom::direction(&pts[e], &pts[e + 1]) - base);
            let nlo = lo.max(d - eps);
            let nhi = hi.min(d + eps);
            if nlo > nhi {
                break;
            }
            // The anchor heading of the extended span must itself satisfy
            // every constraint (that's what DAD measures against).
            let anchor = unwrap_near(geom::direction(&pts[s], &pts[next]) - base);
            if anchor < nlo - 1e-12 || anchor > nhi + 1e-12 {
                break;
            }
            lo = nlo;
            hi = nhi;
            e = next;
        }
        kept.push(e as u32);
        s = e;
    }
    kept
}

/// Wraps an angle difference into (−π, π].
fn unwrap_near(mut d: f64) -> f64 {
    use std::f64::consts::{PI, TAU};
    while d > PI {
        d -= TAU;
    }
    while d <= -PI {
        d += TAU;
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use trajectory::{ErrorMeasure, Point};

    fn traj(coords: &[(f64, f64)]) -> Trajectory {
        Trajectory::new(
            coords
                .iter()
                .enumerate()
                .map(|(i, &(x, y))| Point::new(x, y, i as f64))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn straight_line_collapses_to_endpoints() {
        let t = traj(&[(0.0, 0.0), (10.0, 0.0), (20.0, 0.0), (30.0, 0.0)]);
        assert_eq!(spansearch_one(&t, 4), vec![0, 3]);
    }

    #[test]
    fn right_angle_turn_is_preserved() {
        let t = traj(&[
            (0.0, 0.0),
            (10.0, 0.0),
            (20.0, 0.0),
            (20.0, 10.0),
            (20.0, 20.0),
        ]);
        let kept = spansearch_one(&t, 3);
        assert!(kept.contains(&2), "turn at index 2 must survive: {kept:?}");
        // With the corner kept, the DAD error is (near) zero.
        let err = ErrorMeasure::Dad.trajectory_error(&t, &kept);
        assert!(err < 0.1, "DAD error {err}");
    }

    #[test]
    fn respects_budget() {
        // Spiral with constantly changing direction.
        let pts: Vec<(f64, f64)> = (0..30)
            .map(|i| {
                let a = i as f64 * 0.4;
                (100.0 * a.cos(), 100.0 * a.sin())
            })
            .collect();
        let t = traj(&pts);
        for budget in [2, 4, 8, 16] {
            let kept = spansearch_one(&t, budget);
            assert!(kept.len() <= budget, "budget {budget}: kept {}", kept.len());
        }
    }

    #[test]
    fn smaller_budget_means_larger_dad_error() {
        let pts: Vec<(f64, f64)> = (0..40)
            .map(|i| {
                let a = i as f64 * 0.3;
                (100.0 * a.cos(), 100.0 * a.sin())
            })
            .collect();
        let t = traj(&pts);
        let coarse = ErrorMeasure::Dad.trajectory_error(&t, &spansearch_one(&t, 3));
        let fine = ErrorMeasure::Dad.trajectory_error(&t, &spansearch_one(&t, 20));
        assert!(fine <= coarse + 1e-9, "fine {fine} vs coarse {coarse}");
    }

    #[test]
    fn simplifier_impl_covers_database() {
        let db = TrajectoryDb::new(vec![
            traj(&[(0.0, 0.0), (10.0, 0.0), (20.0, 5.0), (30.0, 0.0)]),
            traj(&[(0.0, 0.0), (0.0, 10.0)]),
        ]);
        let simp = SpanSearch.simplify(&db, 5);
        assert!(simp.total_points() <= 6);
        assert_eq!(simp.kept(1), &[0, 1]);
        assert_eq!(SpanSearch.name(), "Span-Search");
    }

    #[test]
    fn unwrap_near_is_principal() {
        use std::f64::consts::PI;
        assert!((unwrap_near(3.0 * PI) - PI).abs() < 1e-12);
        assert!((unwrap_near(-3.0 * PI) - PI).abs() < 1e-12);
        assert_eq!(unwrap_near(0.5), 0.5);
    }
}
