//! Error-bounded simplification (extension).
//!
//! The paper's related work distinguishes the *min-error* EDTS problem
//! (this crate's main mode: fixed budget, minimize error) from the
//! *min-size* problem: given an error tolerance ε, keep as few points as
//! possible while every anchor segment's Eq. 1 error stays within ε
//! (Meratnia & de By's greedy one-pass strategy). This module provides
//! that dual mode — useful for users who think in tolerances rather than
//! budgets — plus the bridge both directions: the minimum ε that reaches a
//! given budget.

use trajectory::{ErrorMeasure, Simplification, Trajectory, TrajectoryDb};

/// Greedy error-bounded simplification of one trajectory: from each kept
/// point, extend the anchor as far as the Eq. 1 segment error allows.
/// Every produced anchor satisfies `segment_error ≤ eps`.
pub fn bounded_one(traj: &Trajectory, measure: ErrorMeasure, eps: f64) -> Vec<u32> {
    let n = traj.len();
    if n <= 2 {
        return (0..n as u32).collect();
    }
    let mut kept = vec![0u32];
    let mut s = 0usize;
    while s < n - 1 {
        // Furthest e with error(s, e) ≤ eps; e = s+1 is always valid
        // (single original segment has zero spatial error; DAD/SAD are
        // zero against themselves too).
        let mut e = s + 1;
        while e + 1 < n && measure.segment_error(traj, s, e + 1) <= eps {
            e += 1;
        }
        kept.push(e as u32);
        s = e;
    }
    kept
}

/// Error-bounded simplification of a whole database: one tolerance, every
/// trajectory simplified independently (the error bound is local by
/// definition).
pub fn bounded_db(db: &TrajectoryDb, measure: ErrorMeasure, eps: f64) -> Simplification {
    let kept = db
        .iter()
        .map(|(_, t)| bounded_one(t, measure, eps))
        .collect();
    Simplification::from_kept(db, kept)
}

/// The smallest tolerance (within `tol` relative precision) whose bounded
/// simplification fits in `budget` points — the bridge from the min-size
/// formulation back to the paper's budgeted setting. Returns the tolerance
/// and its simplification.
pub fn min_eps_for_budget(
    db: &TrajectoryDb,
    measure: ErrorMeasure,
    budget: usize,
) -> (f64, Simplification) {
    // Establish an upper bound by doubling.
    let mut hi = 1.0f64;
    let mut best = bounded_db(db, measure, hi);
    let mut guard = 0;
    while best.total_points() > budget && guard < 60 {
        hi *= 2.0;
        best = bounded_db(db, measure, hi);
        guard += 1;
    }
    let mut lo = 0.0f64;
    for _ in 0..40 {
        let mid = 0.5 * (lo + hi);
        let s = bounded_db(db, measure, mid);
        if s.total_points() <= budget {
            hi = mid;
            best = s;
        } else {
            lo = mid;
        }
    }
    (hi, best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use trajectory::Point;

    fn zigzag(n: usize, amp: f64) -> Trajectory {
        Trajectory::new(
            (0..n)
                .map(|i| {
                    let y = if i % 2 == 0 { 0.0 } else { amp };
                    Point::new(i as f64 * 10.0, y, i as f64)
                })
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn result_respects_the_bound() {
        let t = zigzag(50, 7.0);
        for eps in [0.5, 4.0, 10.0] {
            let kept = bounded_one(&t, ErrorMeasure::Sed, eps);
            let err = ErrorMeasure::Sed.trajectory_error(&t, &kept);
            assert!(err <= eps + 1e-9, "eps {eps}: error {err}");
        }
    }

    #[test]
    fn larger_tolerance_keeps_fewer_points() {
        let t = zigzag(60, 7.0);
        let tight = bounded_one(&t, ErrorMeasure::Sed, 0.5).len();
        let loose = bounded_one(&t, ErrorMeasure::Sed, 20.0).len();
        assert!(loose < tight, "loose {loose} vs tight {tight}");
        assert_eq!(loose, 2, "a zigzag within tolerance collapses to endpoints");
    }

    #[test]
    fn zero_tolerance_keeps_everything_wiggly() {
        let t = zigzag(20, 5.0);
        let kept = bounded_one(&t, ErrorMeasure::Sed, 0.0);
        // Every interior point deviates, so all must be kept.
        assert_eq!(kept.len(), 20);
    }

    #[test]
    fn straight_line_collapses_regardless() {
        let t = Trajectory::new(
            (0..30)
                .map(|i| Point::new(i as f64 * 5.0, 0.0, i as f64))
                .collect(),
        )
        .unwrap();
        let kept = bounded_one(&t, ErrorMeasure::Sed, 1e-6);
        assert_eq!(kept, vec![0, 29]);
    }

    #[test]
    fn min_eps_for_budget_meets_budget() {
        let db = TrajectoryDb::new(vec![zigzag(40, 9.0), zigzag(25, 3.0)]);
        let budget = 20;
        let (eps, simp) = min_eps_for_budget(&db, ErrorMeasure::Sed, budget);
        assert!(simp.total_points() <= budget);
        assert!(eps > 0.0);
        // The bound holds on the result.
        assert!(ErrorMeasure::Sed.db_error(&db, &simp) <= eps + 1e-9);
        // A slightly tighter eps would blow the budget (minimality, up to
        // binary-search precision).
        let tighter = bounded_db(&db, ErrorMeasure::Sed, eps * 0.8);
        assert!(tighter.total_points() >= simp.total_points());
    }

    #[test]
    fn works_for_all_measures() {
        let db = TrajectoryDb::new(vec![zigzag(30, 6.0)]);
        for m in ErrorMeasure::ALL {
            let s = bounded_db(&db, m, 1.0);
            assert!(s.total_points() >= 2);
            assert!(m.db_error(&db, &s) <= 1.0 + 1e-9, "{m}");
        }
    }
}
