//! Persisting simplified databases as kept-bitmap snapshots.
//!
//! The paper's output artifact is a *simplified database* `D'` that will
//! be queried many times. The snapshot format
//! ([`trajectory::snapshot`]) persists exactly that pairing: the full
//! columns of `D` plus a kept-point bitmap selecting `D'`. Serving then
//! opens the file with [`trajectory::MappedStore::open`] and queries the
//! bitmap in place (`QueryEngine::range_kept`) — no CSV re-parse, no
//! materialization of `D'`, and the original columns stay addressable
//! for error measures or re-simplification under a different budget.

use std::path::Path;

use trajectory::snapshot::{write_snapshot_with, SnapshotError};
use trajectory::{AsColumns, PointStore, Simplification};

use crate::Simplifier;

/// Writes `store` with `simp`'s kept-point bitmap as one snapshot file:
/// the persisted form of a simplified database.
///
/// The bitmap is derived with [`Simplification::to_bitmap`], so the file
/// stays valid for any store whose offsets `simp` was produced against —
/// including a [`trajectory::MappedStore`] being re-simplified in place.
pub fn write_simplified_snapshot<S, P>(
    store: &S,
    simp: &Simplification,
    path: P,
) -> Result<(), SnapshotError>
where
    S: AsColumns + ?Sized,
    P: AsRef<Path>,
{
    let bitmap = simp.to_bitmap(store);
    write_snapshot_with(store, Some(&bitmap), path)
}

/// One-shot pipeline: simplify `store` to `budget` points with
/// `simplifier`, then persist the result as a kept-bitmap snapshot.
/// Returns the simplification so callers can report its statistics.
pub fn simplify_to_snapshot<P: AsRef<Path>>(
    simplifier: &dyn Simplifier,
    store: &PointStore,
    budget: usize,
    path: P,
) -> Result<Simplification, SnapshotError> {
    let simp = simplifier.simplify_store(store, budget);
    write_simplified_snapshot(store, &simp, path)?;
    Ok(simp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Uniform;
    use trajectory::gen::{generate, DatasetSpec, Scale};
    use trajectory::snapshot::{read_snapshot, MappedStore};

    fn temp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("qdts_simp_persist_tests");
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join(name)
    }

    #[test]
    fn simplified_snapshot_round_trips_store_and_bitmap() {
        let store = generate(&DatasetSpec::geolife(Scale::Smoke), 21).to_store();
        let budget = store.total_points() / 3;
        let path = temp("uniform_simplified.snap");

        let simp = simplify_to_snapshot(&Uniform, &store, budget, &path).unwrap();
        let expected = simp.to_bitmap(&store);

        let snap = read_snapshot(&path).unwrap();
        assert_eq!(snap.store, store, "full columns persist alongside D'");
        assert_eq!(snap.kept.as_ref(), Some(&expected));

        let mapped = MappedStore::open(&path).unwrap();
        assert_eq!(mapped.kept_bitmap().as_ref(), Some(&expected));
        assert_eq!(
            mapped.kept_bitmap().unwrap().count(),
            simp.total_points(),
            "bitmap population = |D'|"
        );
        std::fs::remove_file(&path).ok();
    }
}
