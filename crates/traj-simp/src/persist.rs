//! Persisting simplified databases as kept-bitmap snapshots.
//!
//! The paper's output artifact is a *simplified database* `D'` that will
//! be queried many times. The snapshot format
//! ([`trajectory::snapshot`]) persists exactly that pairing: the full
//! columns of `D` plus a kept-point bitmap selecting `D'`. Serving then
//! opens the file with [`trajectory::MappedStore::open`] and queries the
//! bitmap in place (`QueryEngine::range_kept`) — no CSV re-parse, no
//! materialization of `D'`, and the original columns stay addressable
//! for error measures or re-simplification under a different budget.
//!
//! Sharded databases get the same treatment per shard: the database
//! budget splits across shards proportional to their point counts
//! ([`per_shard_budgets`]), every shard simplifies independently — and
//! in parallel, since shards share nothing — and
//! [`write_simplified_shard_set`] persists one kept-bitmap snapshot per
//! shard plus the manifest, ready for a fan-out engine to serve `D'`
//! straight off the mappings.

use std::path::Path;

use trajectory::parallel;
use trajectory::shard::{Shard, ShardSet, ShardSetError};
use trajectory::snapshot::{write_snapshot_quantized, write_snapshot_with, SnapshotError};
use trajectory::{AsColumns, KeptBitmap, PointStore, Simplification};

use crate::Simplifier;

/// Writes `store` with `simp`'s kept-point bitmap as one snapshot file:
/// the persisted form of a simplified database.
///
/// The bitmap is derived with [`Simplification::to_bitmap`], so the file
/// stays valid for any store whose offsets `simp` was produced against —
/// including a [`trajectory::MappedStore`] being re-simplified in place.
pub fn write_simplified_snapshot<S, P>(
    store: &S,
    simp: &Simplification,
    path: P,
) -> Result<(), SnapshotError>
where
    S: AsColumns + ?Sized,
    P: AsRef<Path>,
{
    let bitmap = simp.to_bitmap(store);
    write_snapshot_with(store, Some(&bitmap), path)
}

/// [`write_simplified_snapshot`] with **quantized columns**: the full
/// columns are delta-encoded on a uniform grid of step `2·max_error`
/// (every decoded coordinate within `max_error` of the original), which
/// typically shrinks the file severalfold at metric-scale bounds. The
/// kept bitmap is stored exactly — the simplified *selection* is
/// lossless, only coordinates are rounded.
pub fn write_simplified_snapshot_quantized<S, P>(
    store: &S,
    simp: &Simplification,
    max_error: f64,
    path: P,
) -> Result<(), SnapshotError>
where
    S: AsColumns + ?Sized,
    P: AsRef<Path>,
{
    let bitmap = simp.to_bitmap(store);
    write_snapshot_quantized(store, Some(&bitmap), max_error, path)
}

/// One-shot pipeline: simplify `store` to `budget` points with
/// `simplifier`, then persist the result as a kept-bitmap snapshot.
/// Returns the simplification so callers can report its statistics.
pub fn simplify_to_snapshot<P: AsRef<Path>>(
    simplifier: &dyn Simplifier,
    store: &PointStore,
    budget: usize,
    path: P,
) -> Result<Simplification, SnapshotError> {
    let simp = simplifier.simplify_store(store, budget);
    write_simplified_snapshot(store, &simp, path)?;
    Ok(simp)
}

// ---------------------------------------------------------------------
// Sharded simplification.
// ---------------------------------------------------------------------

/// Splits a database-level point budget across shards proportional to
/// their point counts (largest-remainder rounding, total never exceeds
/// `budget`). Per-shard floors are left to the simplifiers themselves —
/// every algorithm already clamps to its endpoint minimum.
#[must_use]
pub fn per_shard_budgets(shards: &[Shard], budget: usize) -> Vec<usize> {
    let total: usize = shards.iter().map(|s| s.store.total_points()).sum();
    if total == 0 {
        return vec![0; shards.len()];
    }
    let mut budgets = Vec::with_capacity(shards.len());
    let mut fractional: Vec<(f64, usize)> = Vec::with_capacity(shards.len());
    let mut assigned = 0usize;
    for (i, shard) in shards.iter().enumerate() {
        let share = budget as f64 * shard.store.total_points() as f64 / total as f64;
        let whole = (share.floor() as usize).min(shard.store.total_points());
        budgets.push(whole);
        assigned += whole;
        fractional.push((share - whole as f64, i));
    }
    let mut leftover = budget.saturating_sub(assigned);
    fractional.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
    for (_, i) in fractional {
        if leftover == 0 {
            break;
        }
        if budgets[i] < shards[i].store.total_points() {
            budgets[i] += 1;
            leftover -= 1;
        }
    }
    budgets
}

/// Simplifies every shard independently with its proportional slice of
/// `budget`, in parallel across shards (shards share nothing, and
/// [`Simplifier`] is `Send + Sync`). Returns one shard-local
/// [`Simplification`] per shard, in shard order.
#[must_use]
pub fn simplify_shards(
    simplifier: &dyn Simplifier,
    shards: &[Shard],
    budget: usize,
) -> Vec<Simplification> {
    let budgets = per_shard_budgets(shards, budget);
    parallel::par_map_indexed(shards, |i, shard| {
        simplifier.simplify_store(&shard.store, budgets[i])
    })
}

/// Persists a sharded simplified database: one snapshot per shard
/// carrying that shard's full columns plus its kept bitmap, tied together
/// by the manifest. `simps[i]` must be shard-local (as produced by
/// [`simplify_shards`]).
pub fn write_simplified_shard_set(
    dir: impl AsRef<Path>,
    shards: &[Shard],
    simps: &[Simplification],
) -> Result<ShardSet, ShardSetError> {
    assert_eq!(
        shards.len(),
        simps.len(),
        "one simplification per shard required"
    );
    let kept: Vec<KeptBitmap> = shards
        .iter()
        .zip(simps)
        .map(|(shard, simp)| simp.to_bitmap(&shard.store))
        .collect();
    ShardSet::write_with(dir, shards, &kept)
}

/// [`write_simplified_shard_set`] with quantized per-shard columns (see
/// [`write_simplified_snapshot_quantized`] for the coding and its error
/// bound).
pub fn write_simplified_shard_set_quantized(
    dir: impl AsRef<Path>,
    shards: &[Shard],
    simps: &[Simplification],
    max_error: f64,
) -> Result<ShardSet, ShardSetError> {
    assert_eq!(
        shards.len(),
        simps.len(),
        "one simplification per shard required"
    );
    let kept: Vec<KeptBitmap> = shards
        .iter()
        .zip(simps)
        .map(|(shard, simp)| simp.to_bitmap(&shard.store))
        .collect();
    ShardSet::write_quantized(dir, shards, Some(&kept), max_error)
}

/// One-shot sharded pipeline: simplify every shard to its proportional
/// budget slice (in parallel), then persist the whole set as kept-bitmap
/// snapshots. Returns the per-shard simplifications so callers can report
/// statistics.
pub fn simplify_to_shard_set(
    simplifier: &dyn Simplifier,
    shards: &[Shard],
    budget: usize,
    dir: impl AsRef<Path>,
) -> Result<Vec<Simplification>, ShardSetError> {
    let simps = simplify_shards(simplifier, shards, budget);
    write_simplified_shard_set(dir, shards, &simps)?;
    Ok(simps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Uniform;
    use trajectory::gen::{generate, DatasetSpec, Scale};
    use trajectory::snapshot::{read_snapshot, MappedStore};

    fn temp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("qdts_simp_persist_tests");
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join(name)
    }

    #[test]
    fn sharded_simplify_respects_budget_and_round_trips() {
        use trajectory::shard::{partition, PartitionStrategy, ShardSet};

        let store = generate(&DatasetSpec::geolife(Scale::Smoke), 31).to_store();
        let shards = partition(&store, &PartitionStrategy::Hash { parts: 3 });
        let budget = store.total_points() / 2;

        let budgets = per_shard_budgets(&shards, budget);
        assert_eq!(budgets.len(), shards.len());
        assert!(budgets.iter().sum::<usize>() <= budget);
        // Proportionality: bigger shards get bigger slices.
        for (a, b) in shards.iter().zip(&budgets) {
            assert!(*b <= a.store.total_points());
        }

        let dir = std::env::temp_dir()
            .join("qdts_simp_persist_tests")
            .join(format!("sharded_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let simps = simplify_to_shard_set(&Uniform, &shards, budget, &dir).unwrap();
        assert_eq!(simps.len(), shards.len());
        let kept_total: usize = simps.iter().map(Simplification::total_points).sum();
        assert!(
            kept_total <= budget + 2 * store.len(),
            "endpoint floors only"
        );

        // Reopen: every shard carries its bitmap, populations match.
        let set = ShardSet::load(&dir).unwrap();
        for (open, simp) in set.open_mapped().unwrap().iter().zip(&simps) {
            let bitmap = open.kept.as_ref().expect("kept bitmap persisted");
            assert_eq!(bitmap.count(), simp.total_points());
        }
        // Parallel per-shard simplify equals the sequential definition.
        let budgets = per_shard_budgets(&shards, budget);
        for (i, shard) in shards.iter().enumerate() {
            assert_eq!(simps[i], Uniform.simplify_store(&shard.store, budgets[i]));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn quantized_simplified_snapshot_keeps_bitmap_exact_and_bounds_coords() {
        let store = generate(&DatasetSpec::geolife(Scale::Smoke), 77).to_store();
        let budget = store.total_points() / 3;
        let max_error = 0.5;
        let raw_path = temp("simplified_raw.snap");
        let q_path = temp("simplified_quantized.snap");

        let simp = Uniform.simplify_store(&store, budget);
        let expected = simp.to_bitmap(&store);
        write_simplified_snapshot(&store, &simp, &raw_path).unwrap();
        write_simplified_snapshot_quantized(&store, &simp, max_error, &q_path).unwrap();

        let raw_len = std::fs::metadata(&raw_path).unwrap().len();
        let q_len = std::fs::metadata(&q_path).unwrap().len();
        assert!(
            q_len * 2 < raw_len,
            "quantized simplified snapshot should be at least 2x smaller: {q_len} vs {raw_len}"
        );

        // Bitmap exact, coordinates within the stored bound.
        let snap = read_snapshot(&q_path).unwrap();
        assert_eq!(snap.kept.as_ref(), Some(&expected));
        assert_eq!(snap.quant.map(|q| q.max_error), Some(max_error));
        assert_eq!(snap.store.offsets(), store.offsets());
        for (orig, dec) in [
            (store.xs(), snap.store.xs()),
            (store.ys(), snap.store.ys()),
            (store.ts(), snap.store.ts()),
        ] {
            for (a, b) in orig.iter().zip(dec) {
                assert!((a - b).abs() <= max_error * 1.000_001);
            }
        }

        // The mapped open serves the same decoded columns and bitmap.
        let mapped = MappedStore::open(&q_path).unwrap();
        assert_eq!(mapped.kept_bitmap().as_ref(), Some(&expected));
        assert_eq!(mapped.xs(), snap.store.xs());
        std::fs::remove_file(&raw_path).ok();
        std::fs::remove_file(&q_path).ok();
    }

    #[test]
    fn quantized_shard_set_round_trips_bitmaps() {
        use trajectory::shard::{partition, PartitionStrategy, ShardSet};

        let store = generate(&DatasetSpec::geolife(Scale::Smoke), 13).to_store();
        let shards = partition(&store, &PartitionStrategy::Hash { parts: 2 });
        let budget = store.total_points() / 2;
        let simps = simplify_shards(&Uniform, &shards, budget);

        let dir = std::env::temp_dir()
            .join("qdts_simp_persist_tests")
            .join(format!("sharded_q_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        write_simplified_shard_set_quantized(&dir, &shards, &simps, 0.5).unwrap();

        let set = ShardSet::load(&dir).unwrap();
        for (open, simp) in set.open_mapped().unwrap().iter().zip(&simps) {
            let bitmap = open.kept.as_ref().expect("kept bitmap persisted");
            assert_eq!(bitmap.count(), simp.total_points());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn simplified_snapshot_round_trips_store_and_bitmap() {
        let store = generate(&DatasetSpec::geolife(Scale::Smoke), 21).to_store();
        let budget = store.total_points() / 3;
        let path = temp("uniform_simplified.snap");

        let simp = simplify_to_snapshot(&Uniform, &store, budget, &path).unwrap();
        let expected = simp.to_bitmap(&store);

        let snap = read_snapshot(&path).unwrap();
        assert_eq!(snap.store, store, "full columns persist alongside D'");
        assert_eq!(snap.kept.as_ref(), Some(&expected));

        let mapped = MappedStore::open(&path).unwrap();
        assert_eq!(mapped.kept_bitmap().as_ref(), Some(&expected));
        assert_eq!(
            mapped.kept_bitmap().unwrap().count(),
            simp.total_points(),
            "bitmap population = |D'|"
        );
        std::fs::remove_file(&path).ok();
    }
}
