//! One-pass error-bounded online simplification (opening-window SED).
//!
//! Where [`streaming`](crate::streaming) bounds the *buffer size* and
//! lets the error float, this module bounds the **error** and lets the
//! size float — the "One-Pass Error Bounded Trajectory Simplification"
//! family (PAPERS.md): each raw point is examined exactly once as it
//! arrives, and every dropped point is guaranteed a synchronized
//! Euclidean distance (SED) of at most ε from the kept segment that
//! replaces it.
//!
//! The implementation is the classic *opening-window* variant: keep an
//! anchor (the last emitted point) and a window of raw points since.
//! When point `p` arrives, test whether every windowed point stays
//! within ε of the segment `anchor → p`; if yes the window extends, if
//! no the window's last point is emitted as the new anchor and the
//! window restarts at `p`. The test is O(window) per point — the cone
//! -intersection refinements of the CISED line of work trade that for
//! O(1), but with an ε-bounded window the buffer stays small in
//! practice and the simple form keeps the bound easy to audit.
//!
//! [`OnePassSed`] implements
//! [`trajectory::delta::OnlineSimplifier`], so it plugs straight into
//! the live-ingestion [`DeltaStore`](trajectory::DeltaStore) as the
//! admission-time simplifier. It is fully deterministic — a requirement
//! of WAL crash replay.

use trajectory::delta::OnlineSimplifier;
use trajectory::error::sed;
use trajectory::Point;

/// Opening-window one-pass simplifier with a hard SED bound of `eps`.
///
/// Feed points through the [`OnlineSimplifier`] protocol; the emitted
/// subsequence always contains the first and last point of each
/// trajectory, and every dropped point lies within `eps` (in SED) of
/// the kept segment spanning it.
///
/// ```
/// use traj_simp::OnePassSed;
/// use trajectory::delta::OnlineSimplifier;
/// use trajectory::Point;
///
/// let mut s = OnePassSed::new(1.0);
/// let mut out = Vec::new();
/// s.begin();
/// for i in 0..10 {
///     // A straight line: everything between the endpoints is droppable.
///     s.push(Point::new(i as f64, 2.0 * i as f64, i as f64), &mut out);
/// }
/// s.finish(&mut out);
/// assert_eq!(out.len(), 2);
/// assert_eq!((out[0].t, out[1].t), (0.0, 9.0));
/// ```
#[derive(Debug, Clone)]
pub struct OnePassSed {
    eps: f64,
    anchor: Option<Point>,
    window: Vec<Point>,
}

impl OnePassSed {
    /// A simplifier guaranteeing SED ≤ `eps` for every dropped point.
    ///
    /// # Panics
    /// When `eps` is negative or non-finite.
    #[must_use]
    pub fn new(eps: f64) -> Self {
        assert!(eps.is_finite() && eps >= 0.0, "eps must be finite and >= 0");
        Self {
            eps,
            anchor: None,
            window: Vec::new(),
        }
    }

    /// The configured error bound ε.
    #[must_use]
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// Convenience: one-shot simplification of a complete point slice.
    #[must_use]
    pub fn simplify(mut self, pts: &[Point]) -> Vec<Point> {
        let mut out = Vec::new();
        self.begin();
        for &p in pts {
            self.push(p, &mut out);
        }
        self.finish(&mut out);
        out
    }
}

impl OnlineSimplifier for OnePassSed {
    fn begin(&mut self) {
        self.anchor = None;
        self.window.clear();
    }

    fn push(&mut self, p: Point, out: &mut Vec<Point>) {
        let Some(anchor) = self.anchor else {
            // First point of the trajectory: always kept, becomes anchor.
            self.anchor = Some(p);
            out.push(p);
            return;
        };
        if self.window.iter().all(|q| sed(&anchor, &p, q) <= self.eps) {
            self.window.push(p);
        } else {
            // The previous window endpoint was the last point for which
            // all intermediates satisfied the bound — emit it and open a
            // fresh window at p. The window cannot be empty here: an
            // empty window passes the test vacuously.
            let kept = *self.window.last().expect("non-empty window on failure");
            out.push(kept);
            self.anchor = Some(kept);
            self.window.clear();
            self.window.push(p);
        }
    }

    fn finish(&mut self, out: &mut Vec<Point>) {
        if let Some(&last) = self.window.last() {
            // The final point is always kept; intermediates passed the
            // bound against (anchor, last) when last arrived.
            out.push(last);
        }
        self.anchor = None;
        self.window.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(eps: f64, pts: &[Point]) -> Vec<Point> {
        OnePassSed::new(eps).simplify(pts)
    }

    fn zigzag(n: usize, amp: f64) -> Vec<Point> {
        (0..n)
            .map(|i| {
                let y = if i % 4 == 2 { amp } else { 0.0 };
                Point::new(i as f64 * 10.0, y, i as f64)
            })
            .collect()
    }

    #[test]
    fn keeps_endpoints_and_is_subset() {
        let pts = zigzag(50, 25.0);
        let out = run(5.0, &pts);
        assert_eq!(out.first(), pts.first());
        assert_eq!(out.last(), pts.last());
        for p in &out {
            assert!(pts.contains(p), "invented point {p}");
        }
        assert!(out.windows(2).all(|w| w[0].t < w[1].t), "time order");
    }

    #[test]
    fn sed_bound_holds_for_every_dropped_point() {
        // The contract: each dropped point is within eps (SED) of the
        // kept segment spanning its timestamp.
        for (eps, amp) in [(1.0, 7.0), (5.0, 7.0), (50.0, 7.0), (3.0, 100.0)] {
            let pts = zigzag(80, amp);
            let out = run(eps, &pts);
            for p in &pts {
                if out.contains(p) {
                    continue;
                }
                let seg = out.windows(2).find(|w| w[0].t <= p.t && p.t <= w[1].t);
                let [s, e] = seg.unwrap_or_else(|| panic!("no segment spans {p}")) else {
                    unreachable!()
                };
                let d = sed(s, e, p);
                assert!(d <= eps + 1e-9, "eps={eps}: dropped {p} has SED {d}");
            }
        }
    }

    #[test]
    fn straight_line_collapses_to_endpoints() {
        let pts: Vec<Point> = (0..100)
            .map(|i| Point::new(i as f64, i as f64 * 3.0, i as f64))
            .collect();
        let out = run(0.5, &pts);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn eps_zero_keeps_everything_nonlinear() {
        let pts = zigzag(20, 4.0);
        let out = run(0.0, &pts);
        // ε = 0 may still drop perfectly collinear points, but the zigzag
        // has a spike every 4 points, so most survive.
        assert!(out.len() >= pts.len() / 2, "kept only {}", out.len());
    }

    #[test]
    fn large_eps_keeps_only_endpoints() {
        let pts = zigzag(60, 3.0);
        let out = run(1e9, &pts);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn single_point_trajectory() {
        let out = run(1.0, &[Point::new(1.0, 2.0, 3.0)]);
        assert_eq!(out, vec![Point::new(1.0, 2.0, 3.0)]);
    }

    #[test]
    fn two_point_trajectory_is_lossless() {
        let pts = vec![Point::new(0.0, 0.0, 0.0), Point::new(5.0, 5.0, 1.0)];
        assert_eq!(run(0.1, &pts), pts);
    }

    #[test]
    fn deterministic_across_runs() {
        let pts = zigzag(200, 13.0);
        assert_eq!(run(2.5, &pts), run(2.5, &pts));
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn negative_eps_rejected() {
        let _ = OnePassSed::new(-1.0);
    }
}
