//! Property-based tests for the simplification baselines: budget
//! contracts, endpoint preservation, and index validity for every
//! algorithm × measure × adaptation combination.

use proptest::prelude::*;
use traj_simp::{
    per_trajectory_budgets, Adaptation, BottomUp, Simplifier, SpanSearch, TopDown, Uniform,
};
use trajectory::{ErrorMeasure, Point, Trajectory, TrajectoryDb};

fn arb_db() -> impl Strategy<Value = TrajectoryDb> {
    prop::collection::vec(
        prop::collection::vec((-500.0..500.0f64, -500.0..500.0f64, 0.1..10.0f64), 2..40),
        1..6,
    )
    .prop_map(|trajs| {
        trajs
            .into_iter()
            .map(|steps| {
                let mut t = 0.0;
                Trajectory::new(
                    steps
                        .into_iter()
                        .map(|(x, y, dt)| {
                            t += dt;
                            Point::new(x, y, t)
                        })
                        .collect(),
                )
                .unwrap()
            })
            .collect()
    })
}

fn check_simplification(
    db: &TrajectoryDb,
    s: &dyn Simplifier,
    budget: usize,
) -> Result<(), TestCaseError> {
    let simp = s.simplify(db, budget);
    let floor = traj_simp::min_points(db);
    prop_assert!(
        simp.total_points() <= budget.max(floor),
        "{} overshot budget: {} > {}",
        s.name(),
        simp.total_points(),
        budget.max(floor)
    );
    for (id, t) in db.iter() {
        let kept = simp.kept(id);
        prop_assert!(!kept.is_empty());
        prop_assert_eq!(kept[0], 0, "{}: first point lost", s.name());
        prop_assert_eq!(
            *kept.last().unwrap(),
            (t.len() - 1) as u32,
            "{}: last point lost",
            s.name()
        );
        prop_assert!(
            kept.windows(2).all(|w| w[0] < w[1]),
            "{}: unsorted",
            s.name()
        );
        prop_assert!(
            *kept.last().unwrap() < t.len() as u32,
            "{}: out of range",
            s.name()
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn topdown_contract((db, frac) in (arb_db(), 0.05..1.0f64)) {
        let budget = ((db.total_points() as f64 * frac) as usize).max(1);
        for m in ErrorMeasure::ALL {
            for a in [Adaptation::Each, Adaptation::Whole] {
                check_simplification(&db, &TopDown::new(m, a), budget)?;
            }
        }
    }

    #[test]
    fn bottomup_contract((db, frac) in (arb_db(), 0.05..1.0f64)) {
        let budget = ((db.total_points() as f64 * frac) as usize).max(1);
        for m in ErrorMeasure::ALL {
            for a in [Adaptation::Each, Adaptation::Whole] {
                check_simplification(&db, &BottomUp::new(m, a), budget)?;
            }
        }
    }

    #[test]
    fn spansearch_and_uniform_contract((db, frac) in (arb_db(), 0.05..1.0f64)) {
        let budget = ((db.total_points() as f64 * frac) as usize).max(1);
        check_simplification(&db, &SpanSearch, budget)?;
        check_simplification(&db, &Uniform, budget)?;
    }

    #[test]
    fn bottomup_exactly_meets_feasible_budgets(db in arb_db()) {
        // Bottom-Up drops one point at a time, so it can hit any budget
        // between the floor and N exactly.
        let floor = traj_simp::min_points(&db);
        let n = db.total_points();
        let budget = (floor + n) / 2;
        let simp = BottomUp::new(ErrorMeasure::Sed, Adaptation::Whole).simplify(&db, budget);
        prop_assert_eq!(simp.total_points(), budget);
    }

    #[test]
    fn budgets_partition_within_caps((db, frac) in (arb_db(), 0.0..1.2f64)) {
        let budget = (db.total_points() as f64 * frac) as usize;
        let budgets = per_trajectory_budgets(&db, budget);
        prop_assert_eq!(budgets.len(), db.len());
        for (id, t) in db.iter() {
            prop_assert!(budgets[id] <= t.len());
            prop_assert!(budgets[id] >= t.len().min(2));
        }
        let floor: usize = db.trajectories().iter().map(|t| t.len().min(2)).sum();
        prop_assert!(budgets.iter().sum::<usize>() <= budget.max(floor));
    }

    #[test]
    fn bottomup_kept_sets_are_nested_across_budgets((db, _x) in (arb_db(), 0..1)) {
        // Bottom-Up's drop order is a fixed deterministic sequence; a
        // larger budget just truncates it earlier, so its kept set is a
        // superset of any smaller budget's. (Note the max *error* is NOT
        // monotone in the budget — refinement non-monotonicity — so that
        // is deliberately not asserted.)
        let floor = traj_simp::min_points(&db);
        let n = db.total_points();
        prop_assume!(n > floor + 4);
        let small = floor + (n - floor) / 4;
        let large = floor + (n - floor) / 2;
        let bu = BottomUp::new(ErrorMeasure::Sed, Adaptation::Whole);
        let s_small = bu.simplify(&db, small);
        let s_large = bu.simplify(&db, large);
        for (id, _) in db.iter() {
            for idx in s_small.kept(id) {
                prop_assert!(
                    s_large.contains(id, *idx),
                    "traj {id} point {idx} kept at budget {small} but dropped at {large}"
                );
            }
        }
    }
}
