//! Property-based tests for the octree index.

use proptest::prelude::*;
use traj_index::{Octree, OctreeConfig};
use trajectory::{Point, Trajectory, TrajectoryDb};

fn arb_db() -> impl Strategy<Value = TrajectoryDb> {
    prop::collection::vec(
        prop::collection::vec((-1e3..1e3f64, -1e3..1e3f64, 0.1..10.0f64), 2..30),
        1..8,
    )
    .prop_map(|trajs| {
        trajs
            .into_iter()
            .map(|steps| {
                let mut t = 0.0;
                let pts = steps
                    .into_iter()
                    .map(|(x, y, dt)| {
                        t += dt;
                        Point::new(x, y, t)
                    })
                    .collect();
                Trajectory::new(pts).unwrap()
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_point_is_indexed_exactly_once(db in arb_db()) {
        let store = db.to_store();
        let tree = Octree::build(&store, OctreeConfig { max_depth: 6, leaf_capacity: 8 });
        let mut gids = tree.collect_points(tree.root());
        gids.sort_unstable();
        prop_assert_eq!(gids.len(), db.total_points());
        gids.dedup();
        prop_assert_eq!(gids.len(), db.total_points(), "duplicate point id");
    }

    #[test]
    fn subtree_counts_are_consistent(db in arb_db()) {
        let store = db.to_store();
        let tree = Octree::build(&store, OctreeConfig { max_depth: 5, leaf_capacity: 4 });
        for id in 0..tree.len() as u32 {
            let n = tree.node(id);
            prop_assert_eq!(tree.collect_points(id).len(), n.point_count as usize);
            let distinct: std::collections::BTreeSet<_> = tree
                .collect_points(id)
                .iter()
                .map(|&gid| store.traj_of(gid))
                .collect();
            prop_assert_eq!(distinct.len(), n.traj_count as usize);
        }
    }

    #[test]
    fn query_count_monotone_down_the_tree(db in arb_db()) {
        let mut tree = Octree::build(&db.to_store(), OctreeConfig { max_depth: 5, leaf_capacity: 4 });
        let bc = db.bounding_cube();
        let (cx, cy, ct) = bc.center();
        let (ex, ey, et) = bc.extents();
        let queries = vec![
            trajectory::Cube::centered(cx, cy, ct, ex * 0.25, ey * 0.25, et * 0.25),
            trajectory::Cube::centered(cx * 0.5, cy * 0.5, ct * 0.5, ex * 0.1, ey * 0.1, et * 0.1),
        ];
        tree.assign_queries(&queries);
        for id in 0..tree.len() as u32 {
            if let Some(children) = tree.node(id).children {
                for c in children {
                    // A query hitting a child must hit the parent.
                    prop_assert!(tree.node(c).query_count <= tree.node(id).query_count);
                }
            }
        }
    }

    #[test]
    fn points_by_trajectory_is_a_partition(db in arb_db()) {
        let tree = Octree::build(&db.to_store(), OctreeConfig { max_depth: 6, leaf_capacity: 8 });
        let groups = tree.points_by_trajectory(tree.root());
        let mut seen = std::collections::BTreeSet::new();
        for (traj, idxs) in groups {
            for idx in idxs {
                prop_assert!(seen.insert((traj, idx)), "duplicate ({traj},{idx})");
                prop_assert!((idx as usize) < db.get(traj).len());
            }
        }
        prop_assert_eq!(seen.len(), db.total_points());
    }
}
