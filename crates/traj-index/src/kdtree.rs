//! Median-split (kd-tree-style) alternative to the octree.
//!
//! The paper's octree halves each dimension geometrically, which leaves
//! nodes unbalanced on skewed data. This index instead performs three
//! successive *median* splits (x, then y, then t) per level — the kd-tree
//! construction rule — and bundles them into one 8-ary step so it is a
//! drop-in [`CubeIndex`] for Agent-Cube (whose action space is fixed at 8
//! children + stop). This realizes the "other indexes, e.g. kd-tree"
//! future-work direction of §I; the `index_ablation` experiment compares
//! the two.
//!
//! Like the octree, the tree is built over a columnar
//! [`trajectory::PointStore`] and its leaves hold bare global [`PointId`]s.

use crate::octree::{group_by_trajectory, LeafSlab, NodeId, PackedPoints};
use crate::traits::CubeIndex;
use rand::rngs::StdRng;
use rand::Rng;
use trajectory::{AsColumns, Cube, Point, PointId, TrajId, TrajectoryDb};

/// One node of the median tree.
#[derive(Debug, Clone)]
struct Node {
    cube: Cube,
    depth: u32,
    children: Option<[NodeId; 8]>,
    /// Start/length of the leaf's run in the packed arrays (leaves only).
    points_start: u32,
    points_len: u32,
    traj_count: u32,
    point_count: u32,
    query_count: u32,
}

/// Build parameters (same knobs as the octree).
#[derive(Debug, Clone, Copy)]
pub struct MedianTreeConfig {
    /// Maximum depth (root = 1).
    pub max_depth: u32,
    /// Leaves with more points than this split (depth permitting).
    pub leaf_capacity: usize,
}

impl Default for MedianTreeConfig {
    fn default() -> Self {
        Self {
            max_depth: 12,
            leaf_capacity: 64,
        }
    }
}

/// The kd-tree-style median-split index.
#[derive(Debug, Clone)]
pub struct MedianTree {
    nodes: Vec<Node>,
    /// Leaf-major packed coordinates/owners/ids (see [`LeafSlab`]).
    packed: PackedPoints,
    /// Copy of the store's offset table (global id → trajectory mapping).
    starts: Vec<u32>,
}

impl MedianTree {
    /// Builds the tree over all points of a columnar `store`. Leaves are
    /// packed into contiguous coordinate runs as the recursion bottoms
    /// out (the recursion visits leaves in DFS order). Like
    /// [`crate::Octree::build`], the build is generic over [`AsColumns`],
    /// so owned and mmap-backed stores index identically.
    pub fn build<S: AsColumns + ?Sized>(store: &S, config: MedianTreeConfig) -> Self {
        let mut cube = store.bounding_cube();
        if cube.is_empty() {
            cube = Cube::new(0.0, 1.0, 0.0, 1.0, 0.0, 1.0);
        }
        // Collect (gid, coords) once; recursion partitions index ranges.
        let mut entries: Vec<(PointId, Point)> = (0..store.total_points() as PointId)
            .map(|gid| (gid, store.point(gid)))
            .collect();
        let owners = store.owner_column();
        let mut tree = Self {
            nodes: Vec::new(),
            packed: PackedPoints::with_capacity(store.total_points()),
            starts: store.offsets().to_vec(),
        };
        tree.build_node(&mut entries[..], &owners, cube, 1, &config);
        tree
    }

    /// Compat constructor from an AoS database (converts to columns first).
    pub fn build_db(db: &TrajectoryDb, config: MedianTreeConfig) -> Self {
        Self::build(&db.to_store(), config)
    }

    /// Recursively builds the subtree over `entries`, returning its id.
    fn build_node(
        &mut self,
        entries: &mut [(PointId, Point)],
        owners: &[u32],
        cube: Cube,
        depth: u32,
        config: &MedianTreeConfig,
    ) -> NodeId {
        let id = self.nodes.len() as NodeId;
        let mut distinct: Vec<u32> = entries
            .iter()
            .map(|(gid, _)| owners[*gid as usize])
            .collect();
        distinct.sort_unstable();
        distinct.dedup();
        self.nodes.push(Node {
            cube,
            depth,
            children: None,
            points_start: 0,
            points_len: 0,
            traj_count: distinct.len() as u32,
            point_count: entries.len() as u32,
            query_count: 0,
        });

        let must_leaf = entries.len() <= config.leaf_capacity || depth >= config.max_depth;
        if must_leaf {
            let start = self.packed.gids.len() as u32;
            for (gid, p) in entries.iter() {
                self.packed.push(*gid, p.x, p.y, p.t, owners[*gid as usize]);
            }
            self.nodes[id as usize].points_start = start;
            self.nodes[id as usize].points_len = entries.len() as u32;
            return id;
        }

        // Three successive median splits: x, y, t — eight balanced parts.
        let by_x = split_median(entries, |p| p.x);
        let mut parts: Vec<&mut [(PointId, Point)]> = Vec::with_capacity(8);
        for half in by_x {
            let by_y = split_median(half, |p| p.y);
            for quarter in by_y {
                let by_t = split_median(quarter, |p| p.t);
                for eighth in by_t {
                    parts.push(eighth);
                }
            }
        }
        debug_assert_eq!(parts.len(), 8);
        let mut children = [0 as NodeId; 8];
        for (k, part) in parts.into_iter().enumerate() {
            let child_cube = bounding_cube_of(part, &cube);
            children[k] = self.build_node(part, owners, child_cube, depth + 1, config);
        }
        self.nodes[id as usize].children = Some(children);
        id
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the tree indexes no points.
    pub fn is_empty(&self) -> bool {
        self.nodes[0].point_count == 0
    }

    /// Maximum depth present.
    pub fn actual_depth(&self) -> u32 {
        self.nodes.iter().map(|n| n.depth).max().unwrap_or(1)
    }

    /// Point count of a node (subtree).
    #[must_use]
    pub fn point_count(&self, id: NodeId) -> u32 {
        self.nodes[id as usize].point_count
    }

    /// Global point ids stored directly at `id` (non-empty only for
    /// leaves).
    #[inline]
    #[must_use]
    pub fn leaf_points(&self, id: NodeId) -> &[PointId] {
        let node = &self.nodes[id as usize];
        let r = node.points_start as usize..(node.points_start + node.points_len) as usize;
        &self.packed.gids[r]
    }

    /// The leaf's packed coordinate/owner runs (empty for interior nodes).
    #[inline]
    #[must_use]
    pub fn leaf_slab(&self, id: NodeId) -> LeafSlab<'_> {
        let node = &self.nodes[id as usize];
        self.packed.slab(node.points_start, node.points_len)
    }

    fn count_query(&mut self, id: NodeId, q: &Cube) {
        if !self.nodes[id as usize].cube.intersects(q) {
            return;
        }
        self.nodes[id as usize].query_count += 1;
        if let Some(children) = self.nodes[id as usize].children {
            for c in children {
                self.count_query(c, q);
            }
        }
    }

    /// Node ids at traversal level `s` (see [`Octree::nodes_at_level`]).
    ///
    /// [`Octree::nodes_at_level`]: crate::octree::Octree::nodes_at_level
    fn nodes_at_level(&self, s: u32) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack = vec![0 as NodeId];
        while let Some(id) = stack.pop() {
            let node = &self.nodes[id as usize];
            if node.traj_count == 0 {
                continue;
            }
            if node.depth == s || (node.children.is_none() && node.depth < s) {
                out.push(id);
            } else if node.depth < s {
                if let Some(children) = node.children {
                    stack.extend(children);
                }
            }
        }
        out
    }
}

/// Splits a slice at its median of `key` (lower half gets the extra
/// element), using `select_nth_unstable` for O(n).
fn split_median(
    entries: &mut [(PointId, Point)],
    key: impl Fn(&Point) -> f64,
) -> [&mut [(PointId, Point)]; 2] {
    let mid = entries.len() / 2;
    if entries.len() >= 2 {
        entries.select_nth_unstable_by(mid, |a, b| key(&a.1).total_cmp(&key(&b.1)));
    }
    let (lo, hi) = entries.split_at_mut(mid);
    [lo, hi]
}

/// Tight bounding cube of `entries`, falling back to `parent` when empty.
fn bounding_cube_of(entries: &[(PointId, Point)], parent: &Cube) -> Cube {
    if entries.is_empty() {
        // Keep a degenerate corner of the parent so geometry stays valid.
        return Cube::new(
            parent.x_min,
            parent.x_min,
            parent.y_min,
            parent.y_min,
            parent.t_min,
            parent.t_min,
        );
    }
    let mut c = Cube::empty();
    for (_, p) in entries {
        c.extend(p);
    }
    c
}

impl CubeIndex for MedianTree {
    fn root(&self) -> NodeId {
        0
    }

    fn depth(&self, id: NodeId) -> u32 {
        self.nodes[id as usize].depth
    }

    fn is_leaf(&self, id: NodeId) -> bool {
        self.nodes[id as usize].children.is_none()
    }

    fn cube(&self, id: NodeId) -> Cube {
        self.nodes[id as usize].cube
    }

    fn children(&self, id: NodeId) -> Option<[NodeId; 8]> {
        self.nodes[id as usize].children
    }

    fn child_stats(&self, id: NodeId) -> Option<[(u32, u32); 8]> {
        let children = self.nodes[id as usize].children?;
        Some(std::array::from_fn(|k| {
            let c = &self.nodes[children[k] as usize];
            (c.traj_count, c.query_count)
        }))
    }

    fn traj_count(&self, id: NodeId) -> u32 {
        self.nodes[id as usize].traj_count
    }

    fn query_count(&self, id: NodeId) -> u32 {
        self.nodes[id as usize].query_count
    }

    fn assign_queries(&mut self, queries: &[Cube]) {
        for n in &mut self.nodes {
            n.query_count = 0;
        }
        for q in queries {
            self.count_query(0, q);
        }
    }

    fn sample_start(&self, s: u32, rng: &mut StdRng) -> NodeId {
        let candidates = self.nodes_at_level(s);
        if candidates.is_empty() {
            return 0;
        }
        let by_query: Vec<f64> = candidates
            .iter()
            .map(|&id| CubeIndex::query_count(self, id) as f64)
            .collect();
        let weights: Vec<f64> = if by_query.iter().sum::<f64>() > 0.0 {
            by_query
        } else {
            candidates
                .iter()
                .map(|&id| CubeIndex::traj_count(self, id) as f64)
                .collect()
        };
        pick_weighted_kd(&candidates, &weights, rng)
    }

    fn sample_start_by_data(&self, s: u32, rng: &mut StdRng) -> NodeId {
        let candidates = self.nodes_at_level(s);
        if candidates.is_empty() {
            return 0;
        }
        let weights: Vec<f64> = candidates
            .iter()
            .map(|&id| CubeIndex::traj_count(self, id) as f64)
            .collect();
        pick_weighted_kd(&candidates, &weights, rng)
    }

    fn points_by_trajectory(&self, id: NodeId) -> Vec<(TrajId, Vec<u32>)> {
        let mut points: Vec<PointId> = Vec::with_capacity(self.point_count(id) as usize);
        let mut stack = vec![id];
        while let Some(n) = stack.pop() {
            match self.nodes[n as usize].children {
                None => points.extend_from_slice(self.leaf_points(n)),
                Some(children) => stack.extend(children),
            }
        }
        group_by_trajectory(points, &self.starts)
    }
}

/// Weighted pick over candidates; uniform when all weights vanish.
fn pick_weighted_kd(candidates: &[NodeId], weights: &[f64], rng: &mut StdRng) -> NodeId {
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return candidates[rng.gen_range(0..candidates.len())];
    }
    let mut pick = rng.gen_range(0.0..total);
    for (id, w) in candidates.iter().zip(weights) {
        pick -= w;
        if pick <= 0.0 {
            return *id;
        }
    }
    *candidates.last().expect("non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use trajectory::gen::{generate, DatasetSpec, Scale};
    use trajectory::PointStore;

    fn store() -> PointStore {
        generate(&DatasetSpec::geolife(Scale::Smoke), 71).to_store()
    }

    #[test]
    fn indexes_every_point_exactly_once() {
        let store = store();
        let tree = MedianTree::build(
            &store,
            MedianTreeConfig {
                max_depth: 6,
                leaf_capacity: 32,
            },
        );
        assert_eq!(tree.point_count(0) as usize, store.total_points());
        let groups = tree.points_by_trajectory(0);
        let total: usize = groups.iter().map(|(_, v)| v.len()).sum();
        assert_eq!(total, store.total_points());
        assert_eq!(groups.len(), store.len());
    }

    #[test]
    fn children_are_balanced_in_point_count() {
        // The defining property vs. the octree: median splits balance the
        // children even on skewed data.
        let store = store();
        let tree = MedianTree::build(
            &store,
            MedianTreeConfig {
                max_depth: 4,
                leaf_capacity: 16,
            },
        );
        let children = CubeIndex::children(&tree, 0).expect("root splits");
        let counts: Vec<u32> = children.iter().map(|&c| tree.point_count(c)).collect();
        let min = *counts.iter().min().unwrap();
        let max = *counts.iter().max().unwrap();
        assert!(
            max <= min + min / 2 + 8,
            "median children should be near-balanced: {counts:?}"
        );
    }

    #[test]
    fn children_partition_counts() {
        let store = store();
        let tree = MedianTree::build(
            &store,
            MedianTreeConfig {
                max_depth: 5,
                leaf_capacity: 16,
            },
        );
        for id in 0..tree.len() as NodeId {
            if let Some(children) = CubeIndex::children(&tree, id) {
                let sum: u32 = children.iter().map(|&c| tree.point_count(c)).sum();
                assert_eq!(sum, tree.point_count(id));
            }
        }
    }

    #[test]
    fn respects_max_depth_and_leaf_capacity() {
        let store = store();
        let tree = MedianTree::build(
            &store,
            MedianTreeConfig {
                max_depth: 3,
                leaf_capacity: 8,
            },
        );
        assert!(tree.actual_depth() <= 3);
        let big = MedianTree::build(
            &store,
            MedianTreeConfig {
                max_depth: 10,
                leaf_capacity: 1_000_000,
            },
        );
        assert_eq!(big.len(), 1, "everything fits in the root leaf");
    }

    #[test]
    fn query_assignment_counts_intersections() {
        let store = store();
        let mut tree = MedianTree::build(&store, MedianTreeConfig::default());
        let whole = store.bounding_cube();
        CubeIndex::assign_queries(&mut tree, &[whole, whole]);
        assert_eq!(CubeIndex::query_count(&tree, 0), 2);
        let far = Cube::centered(1e12, 1e12, 1e12, 1.0, 1.0, 1.0);
        CubeIndex::assign_queries(&mut tree, &[far]);
        assert_eq!(CubeIndex::query_count(&tree, 0), 0);
    }

    #[test]
    fn sample_start_returns_populated_nodes() {
        let store = store();
        let tree = MedianTree::build(
            &store,
            MedianTreeConfig {
                max_depth: 5,
                leaf_capacity: 16,
            },
        );
        let mut rng = StdRng::seed_from_u64(9);
        for s in 1..5 {
            let id = CubeIndex::sample_start(&tree, s, &mut rng);
            assert!(CubeIndex::traj_count(&tree, id) > 0, "level {s}");
        }
    }

    #[test]
    fn empty_database_is_a_single_leaf() {
        let tree = MedianTree::build(&PointStore::new(), MedianTreeConfig::default());
        assert!(tree.is_empty());
        assert_eq!(tree.len(), 1);
    }

    #[test]
    fn child_cubes_contain_their_points() {
        let store = store();
        let tree = MedianTree::build(
            &store,
            MedianTreeConfig {
                max_depth: 4,
                leaf_capacity: 32,
            },
        );
        for id in 0..tree.len() as NodeId {
            let cube = CubeIndex::cube(&tree, id);
            for (traj, idxs) in tree.points_by_trajectory(id) {
                let v = store.view(traj);
                for idx in idxs {
                    let p = v.point(idx as usize);
                    assert!(cube.contains(&p), "node {id}: point {p} outside cube");
                }
            }
        }
    }
}
