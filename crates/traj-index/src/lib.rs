//! Spatio-temporal indexes for trajectory databases.
//!
//! RL4QDTS chooses points to re-introduce into the simplified database by
//! first choosing a *cube* (an index node) and then a point inside it. The
//! paper uses an [`octree`]; the [`CubeIndex`] trait captures exactly what
//! the agents need from an index, and [`kdtree::MedianTree`] provides the
//! kd-tree-style median-split alternative the paper names as future work.
//! Both carry per-node trajectory counts (`M_B`), point counts, and
//! query-workload counts (`Q_B`) — the statistics Agent-Cube's MDP state
//! (Eq. 4) is built from.

#![warn(missing_docs)]

pub mod kdtree;
pub mod octree;
pub mod traits;

pub use kdtree::{MedianTree, MedianTreeConfig};
pub use octree::{LeafSlab, Node, NodeId, Octree, OctreeConfig, PointRef};
pub use traits::{CubeIndex, SpatioTemporalIndex};
