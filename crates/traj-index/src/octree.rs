//! The spatio-temporal octree (§IV of the paper).
//!
//! The octree recursively partitions the database's bounding cube in
//! (x, y, t) into 8 sub-cubes. Each node carries the two distribution
//! statistics Agent-Cube's state (Eq. 4) is built from: the number of
//! distinct trajectories with a point in the cube (`M_B`) and the number of
//! workload queries intersecting the cube (`Q_B`).
//!
//! The tree is built directly over a columnar [`trajectory::PointStore`] and finishes
//! with a *packing* pass: every leaf's points are laid out contiguously in
//! leaf-major coordinate/owner arrays ([`LeafSlab`]), so a range query
//! scans each intersecting leaf as straight `f64` runs — no per-point
//! pointer chase, no strided column gather. `M_B` is computed during
//! insertion with a per-node last-seen marker (points arrive in
//! trajectory-major global-id order), replacing the allocation-heavy
//! sorted-list merges of the AoS design.

use rand::rngs::StdRng;
use rand::Rng;
use trajectory::{AsColumns, Cube, PointId, TrajId, TrajectoryDb};

/// Index of a node in the octree arena.
pub type NodeId = u32;

/// Reference to one original point: trajectory id + point index. This is
/// the agents' per-trajectory addressing; inside the index itself points
/// are bare [`PointId`] column indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PointRef {
    /// Trajectory id within the indexed database.
    pub traj: TrajId,
    /// Point index within that trajectory.
    pub idx: u32,
}

/// A leaf's points in packed struct-of-arrays form: parallel runs of
/// coordinates, owning trajectory ids, and global point ids, contiguous in
/// memory per leaf. This is the view query execution scans.
#[derive(Debug, Clone, Copy)]
pub struct LeafSlab<'a> {
    /// x coordinates.
    pub xs: &'a [f64],
    /// y coordinates.
    pub ys: &'a [f64],
    /// Timestamps.
    pub ts: &'a [f64],
    /// Owning trajectory per point.
    pub owners: &'a [u32],
    /// Global point ids (column indices into the backing store).
    pub gids: &'a [PointId],
}

impl LeafSlab<'_> {
    /// Number of points in the slab.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.gids.len()
    }

    /// True when the slab holds no points.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.gids.is_empty()
    }
}

/// Leaf-major packed point storage shared by both index backends.
#[derive(Debug, Clone, Default)]
pub(crate) struct PackedPoints {
    pub xs: Vec<f64>,
    pub ys: Vec<f64>,
    pub ts: Vec<f64>,
    pub owners: Vec<u32>,
    pub gids: Vec<PointId>,
}

impl PackedPoints {
    pub(crate) fn with_capacity(n: usize) -> Self {
        Self {
            xs: Vec::with_capacity(n),
            ys: Vec::with_capacity(n),
            ts: Vec::with_capacity(n),
            owners: Vec::with_capacity(n),
            gids: Vec::with_capacity(n),
        }
    }

    pub(crate) fn push(&mut self, gid: PointId, x: f64, y: f64, t: f64, owner: u32) {
        self.xs.push(x);
        self.ys.push(y);
        self.ts.push(t);
        self.owners.push(owner);
        self.gids.push(gid);
    }

    pub(crate) fn slab(&self, start: u32, len: u32) -> LeafSlab<'_> {
        let r = start as usize..(start + len) as usize;
        LeafSlab {
            xs: &self.xs[r.clone()],
            ys: &self.ys[r.clone()],
            ts: &self.ts[r.clone()],
            owners: &self.owners[r.clone()],
            gids: &self.gids[r],
        }
    }
}

/// One octree node.
#[derive(Debug, Clone)]
pub struct Node {
    /// The node's spatio-temporal cube.
    pub cube: Cube,
    /// The *tight* bounding cube of the points actually present — the
    /// min/max fold of the subtree's coordinates, usually much smaller
    /// than the octant `cube`. Range execution prunes and accepts
    /// against this, so sparse nodes stop costing point touches.
    /// `Cube::empty()` for point-free nodes.
    tight: Cube,
    /// Depth in the tree; the root is at depth 1, matching the paper's
    /// `B^1_1` notation where level 1 is the root.
    pub depth: u32,
    /// Child node ids (octant order of [`Cube::octants`]); `None` for leaves.
    pub children: Option<[NodeId; 8]>,
    /// Start of the leaf's run in the packed arrays (leaves only).
    points_start: u32,
    /// Length of the leaf's packed run (leaves only).
    points_len: u32,
    /// `M_B`: number of distinct trajectories with ≥1 point in the cube.
    pub traj_count: u32,
    /// `N_B`: number of points in the cube (all descendants).
    pub point_count: u32,
    /// `Q_B`: number of workload queries intersecting the cube.
    pub query_count: u32,
}

impl Node {
    fn new_leaf(cube: Cube, depth: u32) -> Self {
        Self {
            cube,
            tight: Cube::empty(),
            depth,
            children: None,
            points_start: 0,
            points_len: 0,
            traj_count: 0,
            point_count: 0,
            query_count: 0,
        }
    }

    /// True when the node has no children.
    pub fn is_leaf(&self) -> bool {
        self.children.is_none()
    }
}

/// Build parameters for [`Octree::build`].
#[derive(Debug, Clone, Copy)]
pub struct OctreeConfig {
    /// Maximum tree depth (the paper's `E`; root is depth 1).
    pub max_depth: u32,
    /// A leaf splits when it holds more than this many points (and is above
    /// `max_depth`).
    pub leaf_capacity: usize,
}

impl Default for OctreeConfig {
    fn default() -> Self {
        Self {
            max_depth: 12,
            leaf_capacity: 64,
        }
    }
}

/// The octree over a trajectory database.
#[derive(Debug, Clone)]
pub struct Octree {
    nodes: Vec<Node>,
    config: OctreeConfig,
    /// Leaf-major packed coordinates/owners/ids (see [`LeafSlab`]).
    packed: PackedPoints,
    /// Copy of the store's offset table, so global ids translate to
    /// `(trajectory, local index)` without holding the store itself.
    starts: Vec<u32>,
}

impl Octree {
    /// Builds the octree over all points of a columnar `store` with a bulk
    /// top-down partition: every node's point set is a contiguous slice of
    /// one global-id array, split per level by a stable counting scatter
    /// between two ping-pong buffers. Compared to point-at-a-time
    /// insertion this touches each point once per level with mostly
    /// sequential array traffic and allocates nothing inside the
    /// recursion; `M_B` falls out of the scatter as a run count — global
    /// ids are trajectory-major, so a node's ascending id list groups each
    /// trajectory into one consecutive run.
    ///
    /// The build is generic over [`AsColumns`], so it runs identically
    /// over an owned `PointStore`, a borrowed one, or an mmap-backed
    /// [`trajectory::MappedStore`] — the index never holds the store, only
    /// a copy of its offset table.
    pub fn build<S: AsColumns + ?Sized>(store: &S, config: OctreeConfig) -> Self {
        let mut cube = store.bounding_cube();
        if cube.is_empty() {
            cube = Cube::new(0.0, 1.0, 0.0, 1.0, 0.0, 1.0);
        }
        let n = store.total_points();
        let mut tree = Self {
            nodes: Vec::new(),
            config,
            packed: PackedPoints::with_capacity(n),
            starts: store.offsets().to_vec(),
        };
        let owners = store.owner_column();
        let mut gids: Vec<PointId> = (0..n as PointId).collect();
        let mut aux: Vec<PointId> = vec![0; n];
        let mut octs: Vec<u8> = vec![0; n];
        let root_trajs = count_runs(&owners);
        tree.build_node(
            &mut gids[..],
            &mut aux[..],
            &mut octs[..],
            cube,
            1,
            root_trajs,
            store,
            &owners,
        );
        tree
    }

    /// Recursively builds the subtree holding the `gids` slice (ascending),
    /// returning its node id. `aux` and `octs` are same-length scratch
    /// slices; `traj_count` (`M_B`) was computed by the parent's scatter.
    /// Leaves pack their points into the leaf-major [`LeafSlab`] arrays.
    #[allow(clippy::too_many_arguments)]
    fn build_node<S: AsColumns + ?Sized>(
        &mut self,
        gids: &mut [PointId],
        aux: &mut [PointId],
        octs: &mut [u8],
        cube: Cube,
        depth: u32,
        traj_count: u32,
        store: &S,
        owners: &[u32],
    ) -> NodeId {
        let id = self.nodes.len() as NodeId;
        let mut node = Node::new_leaf(cube, depth);
        node.point_count = gids.len() as u32;
        node.traj_count = traj_count;
        self.nodes.push(node);

        let (xs, ys, ts) = (store.xs(), store.ys(), store.ts());
        let must_leaf = gids.len() <= self.config.leaf_capacity || depth >= self.config.max_depth;
        if must_leaf {
            let start = self.packed.gids.len() as u32;
            for &gid in gids.iter() {
                let g = gid as usize;
                self.packed.push(gid, xs[g], ys[g], ts[g], owners[g]);
            }
            self.nodes[id as usize].points_start = start;
            self.nodes[id as usize].points_len = gids.len() as u32;
            // Tight bounds: lane-wide min/max over the freshly packed,
            // leaf-contiguous runs.
            let slab = self.packed.slab(start, gids.len() as u32);
            let (x_min, x_max) = trajectory::simd::min_max(slab.xs);
            let (y_min, y_max) = trajectory::simd::min_max(slab.ys);
            let (t_min, t_max) = trajectory::simd::min_max(slab.ts);
            self.nodes[id as usize].tight = Cube {
                x_min,
                x_max,
                y_min,
                y_max,
                t_min,
                t_max,
            };
            return id;
        }

        // Octant code + histogram, one coordinate pass.
        let mut counts = [0usize; 8];
        let (cx, cy, ct) = cube.center();
        for (i, &gid) in gids.iter().enumerate() {
            let g = gid as usize;
            let k = usize::from(xs[g] >= cx)
                | (usize::from(ys[g] >= cy) << 1)
                | (usize::from(ts[g] >= ct) << 2);
            octs[i] = k as u8;
            counts[k] += 1;
        }
        // Stable scatter into `aux` (preserves ascending ids per octant);
        // children recurse with the buffer roles swapped (ping-pong), so
        // nothing is copied back. The children's `M_B` falls out of the
        // same pass: per-octant runs of the (trajectory-major) owners.
        let mut cursors = [0usize; 8];
        let mut acc = 0;
        for k in 0..8 {
            cursors[k] = acc;
            acc += counts[k];
        }
        let mut child_trajs = [0u32; 8];
        let mut last_owner = [u32::MAX; 8];
        for (i, &gid) in gids.iter().enumerate() {
            let k = octs[i] as usize;
            aux[cursors[k]] = gid;
            cursors[k] += 1;
            let owner = owners[gid as usize];
            if owner != last_owner[k] {
                last_owner[k] = owner;
                child_trajs[k] += 1;
            }
        }

        let octants = cube.octants();
        let mut children = [0 as NodeId; 8];
        let (mut rest_g, mut rest_a, mut rest_o) = (gids, aux, octs);
        for k in 0..8 {
            let (g, rg) = std::mem::take(&mut rest_g).split_at_mut(counts[k]);
            let (a, ra) = std::mem::take(&mut rest_a).split_at_mut(counts[k]);
            let (o, ro) = std::mem::take(&mut rest_o).split_at_mut(counts[k]);
            // `a` holds this child's scattered ids: swap buffer roles.
            children[k] = self.build_node(
                a,
                g,
                o,
                octants[k],
                depth + 1,
                child_trajs[k],
                store,
                owners,
            );
            (rest_g, rest_a, rest_o) = (rg, ra, ro);
        }
        let mut tight = Cube::empty();
        for &c in &children {
            tight.union_with(&self.nodes[c as usize].tight);
        }
        self.nodes[id as usize].tight = tight;
        self.nodes[id as usize].children = Some(children);
        id
    }

    /// Compat constructor from an AoS database (converts to columns first).
    pub fn build_db(db: &TrajectoryDb, config: OctreeConfig) -> Self {
        Self::build(&db.to_store(), config)
    }

    /// The root node id.
    pub fn root(&self) -> NodeId {
        0
    }

    /// Number of nodes in the tree.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the tree holds only an empty root.
    pub fn is_empty(&self) -> bool {
        self.nodes[0].point_count == 0
    }

    /// Access to a node.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id as usize]
    }

    /// The tight bounding cube of the points actually under `id` — a
    /// subset of `node(id).cube`, precomputed during the build so range
    /// execution can reject or whole-accept a subtree without touching
    /// its points. [`Cube::empty`] for point-free nodes.
    #[inline]
    #[must_use]
    pub fn tight_cube(&self, id: NodeId) -> Cube {
        self.nodes[id as usize].tight
    }

    /// The build configuration.
    pub fn config(&self) -> OctreeConfig {
        self.config
    }

    /// The trajectory owning global point `gid` (binary search over the
    /// captured offset table).
    pub fn traj_of(&self, gid: PointId) -> TrajId {
        debug_assert!(
            gid < *self.starts.last().expect("sentinel"),
            "global id {gid} out of range"
        );
        self.starts.partition_point(|&o| o <= gid) - 1
    }

    /// `(M, Q)` statistics of each child of `id`, in octant order.
    /// `None` for leaves.
    pub fn child_stats(&self, id: NodeId) -> Option<[(u32, u32); 8]> {
        let children = self.node(id).children?;
        Some(std::array::from_fn(|k| {
            let c = self.node(children[k]);
            (c.traj_count, c.query_count)
        }))
    }

    /// Registers a query workload: `Q_B` of every node becomes the number of
    /// query cubes intersecting it. Resets previous counts.
    pub fn assign_queries(&mut self, queries: &[Cube]) {
        for n in &mut self.nodes {
            n.query_count = 0;
        }
        for q in queries {
            self.count_query(0, q);
        }
    }

    fn count_query(&mut self, id: NodeId, q: &Cube) {
        if !self.nodes[id as usize].cube.intersects(q) {
            return;
        }
        self.nodes[id as usize].query_count += 1;
        if let Some(children) = self.nodes[id as usize].children {
            for c in children {
                self.count_query(c, q);
            }
        }
    }

    /// Node ids at traversal level `s`: nodes at depth `s` plus leaves
    /// shallower than `s` (they cannot be descended further). Only nodes
    /// containing at least one trajectory are returned, matching the
    /// paper's action-space constraint.
    pub fn nodes_at_level(&self, s: u32) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack = vec![self.root()];
        while let Some(id) = stack.pop() {
            let node = self.node(id);
            if node.traj_count == 0 {
                continue;
            }
            if node.depth == s || (node.is_leaf() && node.depth < s) {
                out.push(id);
            } else if node.depth < s {
                if let Some(children) = node.children {
                    stack.extend(children);
                }
            }
        }
        out
    }

    /// Samples a start node at level `s` following the query distribution
    /// (weights `Q_B`); falls back to the data distribution (`M_B`) when the
    /// workload misses every candidate. Returns the root for an empty tree.
    pub fn sample_start(&self, s: u32, rng: &mut StdRng) -> NodeId {
        let candidates = self.nodes_at_level(s);
        if candidates.is_empty() {
            return self.root();
        }
        let by_query: Vec<f64> = candidates
            .iter()
            .map(|&id| self.node(id).query_count as f64)
            .collect();
        let weights: Vec<f64> = if by_query.iter().sum::<f64>() > 0.0 {
            by_query
        } else {
            candidates
                .iter()
                .map(|&id| self.node(id).traj_count as f64)
                .collect()
        };
        pick_weighted(&candidates, &weights, rng)
    }

    /// Samples a start node at level `s` following the *data* distribution
    /// (`M_B` weights) — the paper's "w/o Agent-Cube" ablation behaviour.
    pub fn sample_start_by_data(&self, s: u32, rng: &mut StdRng) -> NodeId {
        let candidates = self.nodes_at_level(s);
        if candidates.is_empty() {
            return self.root();
        }
        let weights: Vec<f64> = candidates
            .iter()
            .map(|&id| self.node(id).traj_count as f64)
            .collect();
        pick_weighted(&candidates, &weights, rng)
    }

    /// Global point ids stored directly at `id` (non-empty only for
    /// leaves).
    #[inline]
    #[must_use]
    pub fn leaf_points(&self, id: NodeId) -> &[PointId] {
        let node = &self.nodes[id as usize];
        let r = node.points_start as usize..(node.points_start + node.points_len) as usize;
        &self.packed.gids[r]
    }

    /// The leaf's packed coordinate/owner runs (empty for interior nodes).
    #[inline]
    #[must_use]
    pub fn leaf_slab(&self, id: NodeId) -> LeafSlab<'_> {
        let node = &self.nodes[id as usize];
        self.packed.slab(node.points_start, node.points_len)
    }

    /// All global point ids in the subtree rooted at `id` (DFS over
    /// leaves).
    pub fn collect_points(&self, id: NodeId) -> Vec<PointId> {
        let mut out = Vec::with_capacity(self.node(id).point_count as usize);
        let mut stack = vec![id];
        while let Some(n) = stack.pop() {
            match self.node(n).children {
                None => out.extend_from_slice(self.leaf_points(n)),
                Some(children) => stack.extend(children),
            }
        }
        out
    }

    /// Points in the subtree of `id`, grouped by trajectory with each
    /// trajectory's point indices sorted ascending. This is exactly the
    /// view Agent-Point's state construction (Eq. 6–8) needs.
    pub fn points_by_trajectory(&self, id: NodeId) -> Vec<(TrajId, Vec<u32>)> {
        group_by_trajectory(self.collect_points(id), &self.starts)
    }

    /// Maximum depth of any node actually present.
    pub fn actual_depth(&self) -> u32 {
        self.nodes.iter().map(|n| n.depth).max().unwrap_or(1)
    }
}

/// Number of runs of equal values — the distinct count for a
/// trajectory-major owner sequence.
fn count_runs(owners: &[u32]) -> u32 {
    let mut count = 0u32;
    let mut last = u32::MAX;
    for &owner in owners {
        if owner != last {
            last = owner;
            count += 1;
        }
    }
    count
}

/// Sorts raw global ids and groups them into per-trajectory local index
/// lists using an offset table — shared by both index backends.
pub(crate) fn group_by_trajectory(
    mut points: Vec<PointId>,
    starts: &[u32],
) -> Vec<(TrajId, Vec<u32>)> {
    points.sort_unstable();
    let mut out: Vec<(TrajId, Vec<u32>)> = Vec::new();
    // Sorted global ids visit trajectories in id order: advance the offset
    // cursor instead of binary-searching per point.
    let mut traj = 0usize;
    for gid in points {
        while starts[traj + 1] <= gid {
            traj += 1;
        }
        let idx = gid - starts[traj];
        match out.last_mut() {
            Some((last, idxs)) if *last == traj => idxs.push(idx),
            _ => out.push((traj, vec![idx])),
        }
    }
    out
}

/// Weighted pick over candidate node ids; uniform when all weights vanish.
fn pick_weighted(candidates: &[NodeId], weights: &[f64], rng: &mut StdRng) -> NodeId {
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return candidates[rng.gen_range(0..candidates.len())];
    }
    let mut pick = rng.gen_range(0.0..total);
    for (id, w) in candidates.iter().zip(weights) {
        pick -= w;
        if pick <= 0.0 {
            return *id;
        }
    }
    *candidates.last().expect("non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use trajectory::gen::{generate, DatasetSpec, Scale};
    use trajectory::{Point, PointStore, Trajectory};

    fn small_store() -> PointStore {
        generate(&DatasetSpec::geolife(Scale::Smoke), 7).to_store()
    }

    #[test]
    fn build_indexes_every_point() {
        let store = small_store();
        let tree = Octree::build(&store, OctreeConfig::default());
        assert_eq!(
            tree.node(tree.root()).point_count as usize,
            store.total_points()
        );
        assert_eq!(tree.collect_points(tree.root()).len(), store.total_points());
    }

    #[test]
    fn root_counts_cover_whole_database() {
        let store = small_store();
        let tree = Octree::build(&store, OctreeConfig::default());
        assert_eq!(tree.node(tree.root()).traj_count as usize, store.len());
    }

    #[test]
    fn traj_counts_are_exact_distinct_counts() {
        // The incremental last-seen counting must match a from-scratch
        // distinct count at every node, leaf and interior alike.
        let store = small_store();
        let tree = Octree::build(
            &store,
            OctreeConfig {
                max_depth: 6,
                leaf_capacity: 8,
            },
        );
        for id in 0..tree.len() as NodeId {
            let distinct: std::collections::BTreeSet<_> = tree
                .collect_points(id)
                .iter()
                .map(|&gid| store.traj_of(gid))
                .collect();
            assert_eq!(
                distinct.len(),
                tree.node(id).traj_count as usize,
                "node {id}"
            );
        }
    }

    #[test]
    fn build_db_matches_store_build() {
        let db = generate(&DatasetSpec::geolife(Scale::Smoke), 7);
        let via_db = Octree::build_db(&db, OctreeConfig::default());
        let via_store = Octree::build(&db.to_store(), OctreeConfig::default());
        assert_eq!(via_db.len(), via_store.len());
        assert_eq!(
            via_db.collect_points(0).len(),
            via_store.collect_points(0).len()
        );
    }

    #[test]
    fn children_partition_parent_points() {
        let store = small_store();
        let tree = Octree::build(
            &store,
            OctreeConfig {
                max_depth: 6,
                leaf_capacity: 32,
            },
        );
        for id in 0..tree.len() as NodeId {
            if let Some(children) = tree.node(id).children {
                let child_sum: u32 = children.iter().map(|&c| tree.node(c).point_count).sum();
                assert_eq!(child_sum, tree.node(id).point_count, "node {id}");
                // M is a distinct count: children can only over-count.
                let child_m: u32 = children.iter().map(|&c| tree.node(c).traj_count).sum();
                assert!(child_m >= tree.node(id).traj_count);
            }
        }
    }

    #[test]
    fn points_live_in_their_cubes() {
        let store = small_store();
        let tree = Octree::build(
            &store,
            OctreeConfig {
                max_depth: 8,
                leaf_capacity: 16,
            },
        );
        for id in 0..tree.len() as NodeId {
            let node = tree.node(id);
            if node.is_leaf() {
                let slab = tree.leaf_slab(id);
                for i in 0..slab.len() {
                    let p = Point::new(slab.xs[i], slab.ys[i], slab.ts[i]);
                    assert!(node.cube.contains(&p), "point {p} outside leaf cube");
                    assert_eq!(p, store.point(slab.gids[i]), "packed coords diverge");
                    assert_eq!(slab.owners[i] as usize, store.traj_of(slab.gids[i]));
                }
            } else {
                assert!(tree.leaf_slab(id).is_empty());
            }
        }
    }

    #[test]
    fn tight_cubes_are_exact_and_nested() {
        let store = small_store();
        let tree = Octree::build(
            &store,
            OctreeConfig {
                max_depth: 6,
                leaf_capacity: 16,
            },
        );
        for id in 0..tree.len() as NodeId {
            let node = tree.node(id);
            let tight = tree.tight_cube(id);
            if node.point_count == 0 {
                assert!(tight.is_empty(), "node {id}");
                continue;
            }
            // Tight bounds match a from-scratch fold over the subtree's
            // points and sit inside the structural octant cube.
            let mut expect = Cube::empty();
            for gid in tree.collect_points(id) {
                expect.extend(&store.point(gid));
            }
            assert_eq!(tight, expect, "node {id}");
            assert!(
                node.cube.x_min <= tight.x_min
                    && tight.x_max <= node.cube.x_max
                    && node.cube.y_min <= tight.y_min
                    && tight.y_max <= node.cube.y_max
                    && node.cube.t_min <= tight.t_min
                    && tight.t_max <= node.cube.t_max,
                "node {id}: tight cube escapes the octant cube"
            );
        }
    }

    #[test]
    fn max_depth_is_respected() {
        let store = small_store();
        let tree = Octree::build(
            &store,
            OctreeConfig {
                max_depth: 4,
                leaf_capacity: 1,
            },
        );
        assert!(tree.actual_depth() <= 4);
    }

    #[test]
    fn duplicate_points_do_not_loop_forever() {
        // 100 identical points: can never be separated, must stop at max_depth.
        let pts: Vec<Point> = (0..100).map(|i| Point::new(5.0, 5.0, i as f64)).collect();
        // All share (x, y) but differ in t, plus truly identical spatial dups.
        let t = Trajectory::new(pts).unwrap();
        let store = TrajectoryDb::new(vec![t]).to_store();
        let tree = Octree::build(
            &store,
            OctreeConfig {
                max_depth: 5,
                leaf_capacity: 2,
            },
        );
        assert_eq!(tree.node(0).point_count, 100);
        assert!(tree.actual_depth() <= 5);
    }

    #[test]
    fn query_counts_follow_intersection() {
        let store = small_store();
        let mut tree = Octree::build(&store, OctreeConfig::default());
        let whole = store.bounding_cube();
        tree.assign_queries(&[whole]);
        assert_eq!(tree.node(tree.root()).query_count, 1);
        // A query far outside touches nothing.
        let far = Cube::centered(1e9, 1e9, 1e9, 1.0, 1.0, 1.0);
        tree.assign_queries(&[far]);
        assert_eq!(tree.node(tree.root()).query_count, 0);
        // Re-assignment resets.
        tree.assign_queries(&[whole, whole]);
        assert_eq!(tree.node(tree.root()).query_count, 2);
    }

    #[test]
    fn nodes_at_level_only_returns_populated_nodes() {
        let store = small_store();
        let tree = Octree::build(
            &store,
            OctreeConfig {
                max_depth: 6,
                leaf_capacity: 32,
            },
        );
        for s in 1..=6 {
            for id in tree.nodes_at_level(s) {
                let n = tree.node(id);
                assert!(n.traj_count > 0);
                assert!(n.depth == s || (n.is_leaf() && n.depth < s));
            }
        }
        assert_eq!(tree.nodes_at_level(1), vec![0]);
    }

    #[test]
    fn sample_start_prefers_query_heavy_cubes() {
        let store = small_store();
        let mut tree = Octree::build(
            &store,
            OctreeConfig {
                max_depth: 5,
                leaf_capacity: 32,
            },
        );
        // Put all query mass in one level-2 child.
        let level2 = tree.nodes_at_level(2);
        assert!(!level2.is_empty());
        let target = level2[0];
        let cube = tree.node(target).cube;
        let (cx, cy, ct) = cube.center();
        tree.assign_queries(&[Cube::centered(cx, cy, ct, 1e-6, 1e-6, 1e-6)]);
        let mut rng = StdRng::seed_from_u64(1);
        let mut hits = 0;
        for _ in 0..50 {
            if tree.sample_start(2, &mut rng) == target {
                hits += 1;
            }
        }
        assert_eq!(
            hits, 50,
            "all samples should land on the only query-hit node"
        );
    }

    #[test]
    fn sample_start_falls_back_to_data_distribution() {
        let store = small_store();
        let tree = Octree::build(&store, OctreeConfig::default());
        // No queries assigned at all: still returns a valid populated node.
        let mut rng = StdRng::seed_from_u64(2);
        let id = tree.sample_start(3, &mut rng);
        assert!(tree.node(id).traj_count > 0);
    }

    #[test]
    fn points_by_trajectory_groups_and_sorts() {
        let store = small_store();
        let tree = Octree::build(&store, OctreeConfig::default());
        let groups = tree.points_by_trajectory(tree.root());
        assert_eq!(groups.len(), store.len());
        let total: usize = groups.iter().map(|(_, v)| v.len()).sum();
        assert_eq!(total, store.total_points());
        for (traj, idxs) in &groups {
            assert!(
                idxs.windows(2).all(|w| w[0] < w[1]),
                "unsorted for traj {traj}"
            );
            assert_eq!(idxs.len(), store.view(*traj).len());
        }
    }

    #[test]
    fn traj_of_matches_store_locate() {
        let store = small_store();
        let tree = Octree::build(&store, OctreeConfig::default());
        for gid in (0..store.total_points() as PointId).step_by(7) {
            assert_eq!(tree.traj_of(gid), store.traj_of(gid));
        }
    }

    #[test]
    fn child_stats_matches_nodes() {
        let store = small_store();
        let tree = Octree::build(
            &store,
            OctreeConfig {
                max_depth: 6,
                leaf_capacity: 32,
            },
        );
        let stats = tree.child_stats(tree.root()).expect("root has children");
        let children = tree.node(tree.root()).children.unwrap();
        for (k, &(m, q)) in stats.iter().enumerate() {
            assert_eq!(m, tree.node(children[k]).traj_count);
            assert_eq!(q, tree.node(children[k]).query_count);
        }
    }

    #[test]
    fn empty_database_builds_empty_tree() {
        let tree = Octree::build(&PointStore::new(), OctreeConfig::default());
        assert!(tree.is_empty());
        assert_eq!(tree.len(), 1);
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(tree.sample_start(4, &mut rng), tree.root());
    }
}
