//! The spatio-temporal octree (§IV of the paper).
//!
//! The octree recursively partitions the database's bounding cube in
//! (x, y, t) into 8 sub-cubes. Each node carries the two distribution
//! statistics Agent-Cube's state (Eq. 4) is built from: the number of
//! distinct trajectories with a point in the cube (`M_B`) and the number of
//! workload queries intersecting the cube (`Q_B`).

use rand::rngs::StdRng;
use rand::Rng;
use trajectory::{Cube, TrajId, TrajectoryDb};

/// Index of a node in the octree arena.
pub type NodeId = u32;

/// Reference to one original point: trajectory id + point index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PointRef {
    /// Trajectory id within the indexed database.
    pub traj: TrajId,
    /// Point index within that trajectory.
    pub idx: u32,
}

/// One octree node.
#[derive(Debug, Clone)]
pub struct Node {
    /// The node's spatio-temporal cube.
    pub cube: Cube,
    /// Depth in the tree; the root is at depth 1, matching the paper's
    /// `B^1_1` notation where level 1 is the root.
    pub depth: u32,
    /// Child node ids (octant order of [`Cube::octants`]); `None` for leaves.
    pub children: Option<[NodeId; 8]>,
    /// Points stored here (leaves only; interior nodes are empty).
    points: Vec<PointRef>,
    /// `M_B`: number of distinct trajectories with ≥1 point in the cube.
    pub traj_count: u32,
    /// `N_B`: number of points in the cube (all descendants).
    pub point_count: u32,
    /// `Q_B`: number of workload queries intersecting the cube.
    pub query_count: u32,
}

impl Node {
    fn new_leaf(cube: Cube, depth: u32) -> Self {
        Self {
            cube,
            depth,
            children: None,
            points: Vec::new(),
            traj_count: 0,
            point_count: 0,
            query_count: 0,
        }
    }

    /// True when the node has no children.
    pub fn is_leaf(&self) -> bool {
        self.children.is_none()
    }
}

/// Build parameters for [`Octree::build`].
#[derive(Debug, Clone, Copy)]
pub struct OctreeConfig {
    /// Maximum tree depth (the paper's `E`; root is depth 1).
    pub max_depth: u32,
    /// A leaf splits when it holds more than this many points (and is above
    /// `max_depth`).
    pub leaf_capacity: usize,
}

impl Default for OctreeConfig {
    fn default() -> Self {
        Self {
            max_depth: 12,
            leaf_capacity: 64,
        }
    }
}

/// The octree over a trajectory database.
#[derive(Debug, Clone)]
pub struct Octree {
    nodes: Vec<Node>,
    config: OctreeConfig,
}

impl Octree {
    /// Builds the octree over all points of `db`.
    pub fn build(db: &TrajectoryDb, config: OctreeConfig) -> Self {
        let mut cube = db.bounding_cube();
        if cube.is_empty() {
            cube = Cube::new(0.0, 1.0, 0.0, 1.0, 0.0, 1.0);
        }
        let mut tree = Self {
            nodes: vec![Node::new_leaf(cube, 1)],
            config,
        };
        for (traj, t) in db.iter() {
            for idx in 0..t.len() as u32 {
                let p = *t.point(idx as usize);
                tree.insert(PointRef { traj, idx }, &p, db);
            }
        }
        tree.aggregate_counts(db);
        tree
    }

    /// The root node id.
    pub fn root(&self) -> NodeId {
        0
    }

    /// Number of nodes in the tree.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the tree holds only an empty root.
    pub fn is_empty(&self) -> bool {
        self.nodes[0].point_count == 0
    }

    /// Access to a node.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id as usize]
    }

    /// The build configuration.
    pub fn config(&self) -> OctreeConfig {
        self.config
    }

    /// `(M, Q)` statistics of each child of `id`, in octant order.
    /// `None` for leaves.
    pub fn child_stats(&self, id: NodeId) -> Option<[(u32, u32); 8]> {
        let children = self.node(id).children?;
        Some(std::array::from_fn(|k| {
            let c = self.node(children[k]);
            (c.traj_count, c.query_count)
        }))
    }

    fn insert(&mut self, r: PointRef, p: &trajectory::Point, db: &TrajectoryDb) {
        let mut id = self.root();
        loop {
            let node = &mut self.nodes[id as usize];
            node.point_count += 1;
            match node.children {
                Some(children) => {
                    let k = node.cube.octant_of(p);
                    id = children[k];
                }
                None => {
                    node.points.push(r);
                    let should_split = node.points.len() > self.config.leaf_capacity
                        && node.depth < self.config.max_depth;
                    if should_split {
                        self.split(id, db);
                    }
                    return;
                }
            }
        }
    }

    fn split(&mut self, id: NodeId, db: &TrajectoryDb) {
        let (cube, depth, points) = {
            let node = &mut self.nodes[id as usize];
            (node.cube, node.depth, std::mem::take(&mut node.points))
        };
        let octants = cube.octants();
        let base = self.nodes.len() as NodeId;
        for cube in octants {
            self.nodes.push(Node::new_leaf(cube, depth + 1));
        }
        let children: [NodeId; 8] = std::array::from_fn(|k| base + k as NodeId);
        self.nodes[id as usize].children = Some(children);
        for r in points {
            let p = db.get(r.traj).point(r.idx as usize);
            let k = cube.octant_of(p);
            let child = &mut self.nodes[children[k] as usize];
            child.points.push(r);
            child.point_count += 1;
        }
        // A split can leave one child over capacity (duplicate locations
        // land in the same octant); recurse while depth allows.
        for &c in &children {
            if self.nodes[c as usize].points.len() > self.config.leaf_capacity
                && self.nodes[c as usize].depth < self.config.max_depth
            {
                self.split(c, db);
            }
        }
    }

    /// Computes `M_B` for every node bottom-up. Returns the distinct
    /// trajectory id list of the subtree (sorted), which is merged upward
    /// and discarded — only counts are stored.
    fn aggregate_counts(&mut self, _db: &TrajectoryDb) {
        fn rec(tree: &mut Octree, id: NodeId) -> Vec<TrajId> {
            let node = &tree.nodes[id as usize];
            let mut ids: Vec<TrajId> = match node.children {
                None => {
                    let mut v: Vec<TrajId> = node.points.iter().map(|r| r.traj).collect();
                    v.sort_unstable();
                    v.dedup();
                    v
                }
                Some(children) => {
                    let mut merged: Vec<TrajId> = Vec::new();
                    for &c in &children {
                        let child_ids = rec(tree, c);
                        merged = merge_dedup(&merged, &child_ids);
                    }
                    merged
                }
            };
            ids.shrink_to_fit();
            self_count(tree, id, ids.len() as u32);
            ids
        }
        fn self_count(tree: &mut Octree, id: NodeId, count: u32) {
            tree.nodes[id as usize].traj_count = count;
        }
        rec(self, 0);
    }

    /// Registers a query workload: `Q_B` of every node becomes the number of
    /// query cubes intersecting it. Resets previous counts.
    pub fn assign_queries(&mut self, queries: &[Cube]) {
        for n in &mut self.nodes {
            n.query_count = 0;
        }
        for q in queries {
            self.count_query(0, q);
        }
    }

    fn count_query(&mut self, id: NodeId, q: &Cube) {
        if !self.nodes[id as usize].cube.intersects(q) {
            return;
        }
        self.nodes[id as usize].query_count += 1;
        if let Some(children) = self.nodes[id as usize].children {
            for c in children {
                self.count_query(c, q);
            }
        }
    }

    /// Node ids at traversal level `s`: nodes at depth `s` plus leaves
    /// shallower than `s` (they cannot be descended further). Only nodes
    /// containing at least one trajectory are returned, matching the
    /// paper's action-space constraint.
    pub fn nodes_at_level(&self, s: u32) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack = vec![self.root()];
        while let Some(id) = stack.pop() {
            let node = self.node(id);
            if node.traj_count == 0 {
                continue;
            }
            if node.depth == s || (node.is_leaf() && node.depth < s) {
                out.push(id);
            } else if node.depth < s {
                if let Some(children) = node.children {
                    stack.extend(children);
                }
            }
        }
        out
    }

    /// Samples a start node at level `s` following the query distribution
    /// (weights `Q_B`); falls back to the data distribution (`M_B`) when the
    /// workload misses every candidate. Returns the root for an empty tree.
    pub fn sample_start(&self, s: u32, rng: &mut StdRng) -> NodeId {
        let candidates = self.nodes_at_level(s);
        if candidates.is_empty() {
            return self.root();
        }
        let by_query: Vec<f64> = candidates
            .iter()
            .map(|&id| self.node(id).query_count as f64)
            .collect();
        let weights: Vec<f64> = if by_query.iter().sum::<f64>() > 0.0 {
            by_query
        } else {
            candidates
                .iter()
                .map(|&id| self.node(id).traj_count as f64)
                .collect()
        };
        pick_weighted(&candidates, &weights, rng)
    }

    /// Samples a start node at level `s` following the *data* distribution
    /// (`M_B` weights) — the paper's "w/o Agent-Cube" ablation behaviour.
    pub fn sample_start_by_data(&self, s: u32, rng: &mut StdRng) -> NodeId {
        let candidates = self.nodes_at_level(s);
        if candidates.is_empty() {
            return self.root();
        }
        let weights: Vec<f64> = candidates
            .iter()
            .map(|&id| self.node(id).traj_count as f64)
            .collect();
        pick_weighted(&candidates, &weights, rng)
    }

    /// Points stored directly at `id` (non-empty only for leaves).
    #[inline]
    #[must_use]
    pub fn leaf_points(&self, id: NodeId) -> &[PointRef] {
        &self.nodes[id as usize].points
    }

    /// All points in the subtree rooted at `id` (DFS over leaves).
    pub fn collect_points(&self, id: NodeId) -> Vec<PointRef> {
        let mut out = Vec::with_capacity(self.node(id).point_count as usize);
        let mut stack = vec![id];
        while let Some(n) = stack.pop() {
            let node = self.node(n);
            match node.children {
                None => out.extend_from_slice(&node.points),
                Some(children) => stack.extend(children),
            }
        }
        out
    }

    /// Points in the subtree of `id`, grouped by trajectory with each
    /// trajectory's point indices sorted ascending. This is exactly the
    /// view Agent-Point's state construction (Eq. 6–8) needs.
    pub fn points_by_trajectory(&self, id: NodeId) -> Vec<(TrajId, Vec<u32>)> {
        let mut points = self.collect_points(id);
        points.sort_unstable_by_key(|r| (r.traj, r.idx));
        let mut out: Vec<(TrajId, Vec<u32>)> = Vec::new();
        for r in points {
            match out.last_mut() {
                Some((traj, idxs)) if *traj == r.traj => idxs.push(r.idx),
                _ => out.push((r.traj, vec![r.idx])),
            }
        }
        out
    }

    /// Maximum depth of any node actually present.
    pub fn actual_depth(&self) -> u32 {
        self.nodes.iter().map(|n| n.depth).max().unwrap_or(1)
    }
}

/// Weighted pick over candidate node ids; uniform when all weights vanish.
fn pick_weighted(candidates: &[NodeId], weights: &[f64], rng: &mut StdRng) -> NodeId {
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return candidates[rng.gen_range(0..candidates.len())];
    }
    let mut pick = rng.gen_range(0.0..total);
    for (id, w) in candidates.iter().zip(weights) {
        pick -= w;
        if pick <= 0.0 {
            return *id;
        }
    }
    *candidates.last().expect("non-empty")
}

/// Merges two sorted, deduplicated id lists into one.
fn merge_dedup(a: &[TrajId], b: &[TrajId]) -> Vec<TrajId> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use trajectory::gen::{generate, DatasetSpec, Scale};
    use trajectory::{Point, Trajectory};

    fn small_db() -> TrajectoryDb {
        generate(&DatasetSpec::geolife(Scale::Smoke), 7)
    }

    #[test]
    fn build_indexes_every_point() {
        let db = small_db();
        let tree = Octree::build(&db, OctreeConfig::default());
        assert_eq!(
            tree.node(tree.root()).point_count as usize,
            db.total_points()
        );
        assert_eq!(tree.collect_points(tree.root()).len(), db.total_points());
    }

    #[test]
    fn root_counts_cover_whole_database() {
        let db = small_db();
        let tree = Octree::build(&db, OctreeConfig::default());
        assert_eq!(tree.node(tree.root()).traj_count as usize, db.len());
    }

    #[test]
    fn children_partition_parent_points() {
        let db = small_db();
        let tree = Octree::build(
            &db,
            OctreeConfig {
                max_depth: 6,
                leaf_capacity: 32,
            },
        );
        for id in 0..tree.len() as NodeId {
            if let Some(children) = tree.node(id).children {
                let child_sum: u32 = children.iter().map(|&c| tree.node(c).point_count).sum();
                assert_eq!(child_sum, tree.node(id).point_count, "node {id}");
                // M is a distinct count: children can only over-count.
                let child_m: u32 = children.iter().map(|&c| tree.node(c).traj_count).sum();
                assert!(child_m >= tree.node(id).traj_count);
            }
        }
    }

    #[test]
    fn points_live_in_their_cubes() {
        let db = small_db();
        let tree = Octree::build(
            &db,
            OctreeConfig {
                max_depth: 8,
                leaf_capacity: 16,
            },
        );
        for id in 0..tree.len() as NodeId {
            let node = tree.node(id);
            if node.is_leaf() {
                for r in tree.collect_points(id) {
                    let p = db.get(r.traj).point(r.idx as usize);
                    assert!(node.cube.contains(p), "point {p} outside leaf cube");
                }
            }
        }
    }

    #[test]
    fn max_depth_is_respected() {
        let db = small_db();
        let tree = Octree::build(
            &db,
            OctreeConfig {
                max_depth: 4,
                leaf_capacity: 1,
            },
        );
        assert!(tree.actual_depth() <= 4);
    }

    #[test]
    fn duplicate_points_do_not_loop_forever() {
        // 100 identical points: can never be separated, must stop at max_depth.
        let pts: Vec<Point> = (0..100).map(|i| Point::new(5.0, 5.0, i as f64)).collect();
        // All share (x, y) but differ in t, plus truly identical spatial dups.
        let t = Trajectory::new(pts).unwrap();
        let db = TrajectoryDb::new(vec![t]);
        let tree = Octree::build(
            &db,
            OctreeConfig {
                max_depth: 5,
                leaf_capacity: 2,
            },
        );
        assert_eq!(tree.node(0).point_count, 100);
        assert!(tree.actual_depth() <= 5);
    }

    #[test]
    fn query_counts_follow_intersection() {
        let db = small_db();
        let mut tree = Octree::build(&db, OctreeConfig::default());
        let whole = db.bounding_cube();
        tree.assign_queries(&[whole]);
        assert_eq!(tree.node(tree.root()).query_count, 1);
        // A query far outside touches nothing.
        let far = Cube::centered(1e9, 1e9, 1e9, 1.0, 1.0, 1.0);
        tree.assign_queries(&[far]);
        assert_eq!(tree.node(tree.root()).query_count, 0);
        // Re-assignment resets.
        tree.assign_queries(&[whole, whole]);
        assert_eq!(tree.node(tree.root()).query_count, 2);
    }

    #[test]
    fn nodes_at_level_only_returns_populated_nodes() {
        let db = small_db();
        let tree = Octree::build(
            &db,
            OctreeConfig {
                max_depth: 6,
                leaf_capacity: 32,
            },
        );
        for s in 1..=6 {
            for id in tree.nodes_at_level(s) {
                let n = tree.node(id);
                assert!(n.traj_count > 0);
                assert!(n.depth == s || (n.is_leaf() && n.depth < s));
            }
        }
        assert_eq!(tree.nodes_at_level(1), vec![0]);
    }

    #[test]
    fn sample_start_prefers_query_heavy_cubes() {
        let db = small_db();
        let mut tree = Octree::build(
            &db,
            OctreeConfig {
                max_depth: 5,
                leaf_capacity: 32,
            },
        );
        // Put all query mass in one level-2 child.
        let level2 = tree.nodes_at_level(2);
        assert!(!level2.is_empty());
        let target = level2[0];
        let cube = tree.node(target).cube;
        let (cx, cy, ct) = cube.center();
        tree.assign_queries(&[Cube::centered(cx, cy, ct, 1e-6, 1e-6, 1e-6)]);
        let mut rng = StdRng::seed_from_u64(1);
        let mut hits = 0;
        for _ in 0..50 {
            if tree.sample_start(2, &mut rng) == target {
                hits += 1;
            }
        }
        assert_eq!(
            hits, 50,
            "all samples should land on the only query-hit node"
        );
    }

    #[test]
    fn sample_start_falls_back_to_data_distribution() {
        let db = small_db();
        let tree = Octree::build(&db, OctreeConfig::default());
        // No queries assigned at all: still returns a valid populated node.
        let mut rng = StdRng::seed_from_u64(2);
        let id = tree.sample_start(3, &mut rng);
        assert!(tree.node(id).traj_count > 0);
    }

    #[test]
    fn points_by_trajectory_groups_and_sorts() {
        let db = small_db();
        let tree = Octree::build(&db, OctreeConfig::default());
        let groups = tree.points_by_trajectory(tree.root());
        assert_eq!(groups.len(), db.len());
        let total: usize = groups.iter().map(|(_, v)| v.len()).sum();
        assert_eq!(total, db.total_points());
        for (traj, idxs) in &groups {
            assert!(
                idxs.windows(2).all(|w| w[0] < w[1]),
                "unsorted for traj {traj}"
            );
            assert_eq!(idxs.len(), db.get(*traj).len());
        }
    }

    #[test]
    fn child_stats_matches_nodes() {
        let db = small_db();
        let tree = Octree::build(
            &db,
            OctreeConfig {
                max_depth: 6,
                leaf_capacity: 32,
            },
        );
        let stats = tree.child_stats(tree.root()).expect("root has children");
        let children = tree.node(tree.root()).children.unwrap();
        for (k, &(m, q)) in stats.iter().enumerate() {
            assert_eq!(m, tree.node(children[k]).traj_count);
            assert_eq!(q, tree.node(children[k]).query_count);
        }
    }

    #[test]
    fn empty_database_builds_empty_tree() {
        let tree = Octree::build(&TrajectoryDb::default(), OctreeConfig::default());
        assert!(tree.is_empty());
        assert_eq!(tree.len(), 1);
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(tree.sample_start(4, &mut rng), tree.root());
    }

    #[test]
    fn merge_dedup_merges_sorted_lists() {
        assert_eq!(merge_dedup(&[1, 3, 5], &[2, 3, 6]), vec![1, 2, 3, 5, 6]);
        assert_eq!(merge_dedup(&[], &[1]), vec![1]);
        assert_eq!(merge_dedup(&[1, 2], &[]), vec![1, 2]);
    }
}
