//! The index interface RL4QDTS's agents consume.
//!
//! The paper builds on an octree and "leaves other indexes, e.g. kd-tree,
//! for future exploration" (§I). This trait captures exactly what
//! Agent-Cube and Agent-Point need from an index — 8-way cube refinement
//! with data/query statistics — so alternative partitioning schemes
//! ([`crate::kdtree::MedianTree`]) can be swapped in and ablated.

use rand::rngs::StdRng;
use trajectory::{Cube, PointId, TrajId};

use crate::kdtree::MedianTree;
use crate::octree::{LeafSlab, NodeId, Octree};

/// The structural view query execution needs from a spatio-temporal index:
/// cube-pruned traversal down to per-leaf point lists.
///
/// [`CubeIndex`] is the *agents'* view (distribution statistics, weighted
/// start sampling); this trait is the *query engine's* view. Both octree
/// and median kd-tree implement both, so `traj-query`'s `QueryEngine` can
/// execute range / kNN / similarity queries against either partitioning
/// with the same pruning logic.
pub trait SpatioTemporalIndex {
    /// The root node.
    fn root(&self) -> NodeId;

    /// The node's bounding cube. Every point of the subtree lies inside.
    fn cube(&self, id: NodeId) -> Cube;

    /// The **tight** bounding cube of the points actually present under
    /// `id` — always a subset of [`cube`](Self::cube), and what range
    /// execution should prune and whole-accept against. Defaults to the
    /// structural cube for indexes whose cubes are already tight (the
    /// median kd-tree shrinks every node to its data during the build);
    /// the octree overrides it with the per-node min/max fold it
    /// precomputes while packing leaves.
    fn tight_cube(&self, id: NodeId) -> Cube {
        self.cube(id)
    }

    /// Child ids in a fixed 8-ary order, `None` for leaves.
    fn children(&self, id: NodeId) -> Option<[NodeId; 8]>;

    /// Global point ids stored directly at the node (non-empty only for
    /// leaves). Ids are column indices into the backing
    /// [`trajectory::PointStore`].
    fn leaf_points(&self, id: NodeId) -> &[PointId];

    /// The node's points as packed, leaf-contiguous coordinate/owner runs
    /// (empty for interior nodes) — the layout range execution scans.
    fn leaf_slab(&self, id: NodeId) -> LeafSlab<'_>;

    /// Number of points in the subtree of `id`.
    fn point_count(&self, id: NodeId) -> u32;
}

impl SpatioTemporalIndex for Octree {
    fn root(&self) -> NodeId {
        Octree::root(self)
    }

    fn cube(&self, id: NodeId) -> Cube {
        self.node(id).cube
    }

    fn tight_cube(&self, id: NodeId) -> Cube {
        Octree::tight_cube(self, id)
    }

    fn children(&self, id: NodeId) -> Option<[NodeId; 8]> {
        self.node(id).children
    }

    fn leaf_points(&self, id: NodeId) -> &[PointId] {
        Octree::leaf_points(self, id)
    }

    fn leaf_slab(&self, id: NodeId) -> LeafSlab<'_> {
        Octree::leaf_slab(self, id)
    }

    fn point_count(&self, id: NodeId) -> u32 {
        self.node(id).point_count
    }
}

impl SpatioTemporalIndex for MedianTree {
    fn root(&self) -> NodeId {
        0
    }

    fn cube(&self, id: NodeId) -> Cube {
        CubeIndex::cube(self, id)
    }

    fn children(&self, id: NodeId) -> Option<[NodeId; 8]> {
        CubeIndex::children(self, id)
    }

    fn leaf_points(&self, id: NodeId) -> &[PointId] {
        MedianTree::leaf_points(self, id)
    }

    fn leaf_slab(&self, id: NodeId) -> LeafSlab<'_> {
        MedianTree::leaf_slab(self, id)
    }

    fn point_count(&self, id: NodeId) -> u32 {
        MedianTree::point_count(self, id)
    }
}

/// A spatio-temporal cube index usable by RL4QDTS.
pub trait CubeIndex {
    /// The root node.
    fn root(&self) -> NodeId;

    /// Depth of `id` (root = 1, the paper's `B¹₁` convention).
    fn depth(&self, id: NodeId) -> u32;

    /// True when `id` has no children.
    fn is_leaf(&self, id: NodeId) -> bool;

    /// The node's cube.
    fn cube(&self, id: NodeId) -> Cube;

    /// Child ids in a fixed 8-ary order, `None` for leaves.
    fn children(&self, id: NodeId) -> Option<[NodeId; 8]>;

    /// `(M, Q)` of each child — the Eq. 4 state ingredients.
    fn child_stats(&self, id: NodeId) -> Option<[(u32, u32); 8]>;

    /// `M_B` of the node itself.
    fn traj_count(&self, id: NodeId) -> u32;

    /// `Q_B` of the node itself.
    fn query_count(&self, id: NodeId) -> u32;

    /// Registers the query workload (recomputes every `Q_B`).
    fn assign_queries(&mut self, queries: &[Cube]);

    /// Samples a start node at level `s` following the query distribution,
    /// falling back to the data distribution.
    fn sample_start(&self, s: u32, rng: &mut StdRng) -> NodeId;

    /// Samples a start node at level `s` following the *data* distribution
    /// (`M_B` weights) — what the paper's "w/o Agent-Cube" ablation does.
    fn sample_start_by_data(&self, s: u32, rng: &mut StdRng) -> NodeId;

    /// Points in the subtree of `id`, grouped per trajectory, indices
    /// ascending.
    fn points_by_trajectory(&self, id: NodeId) -> Vec<(TrajId, Vec<u32>)>;
}

impl CubeIndex for Octree {
    fn root(&self) -> NodeId {
        Octree::root(self)
    }

    fn depth(&self, id: NodeId) -> u32 {
        self.node(id).depth
    }

    fn is_leaf(&self, id: NodeId) -> bool {
        self.node(id).is_leaf()
    }

    fn cube(&self, id: NodeId) -> Cube {
        self.node(id).cube
    }

    fn children(&self, id: NodeId) -> Option<[NodeId; 8]> {
        self.node(id).children
    }

    fn child_stats(&self, id: NodeId) -> Option<[(u32, u32); 8]> {
        Octree::child_stats(self, id)
    }

    fn traj_count(&self, id: NodeId) -> u32 {
        self.node(id).traj_count
    }

    fn query_count(&self, id: NodeId) -> u32 {
        self.node(id).query_count
    }

    fn assign_queries(&mut self, queries: &[Cube]) {
        Octree::assign_queries(self, queries)
    }

    fn sample_start(&self, s: u32, rng: &mut StdRng) -> NodeId {
        Octree::sample_start(self, s, rng)
    }

    fn sample_start_by_data(&self, s: u32, rng: &mut StdRng) -> NodeId {
        Octree::sample_start_by_data(self, s, rng)
    }

    fn points_by_trajectory(&self, id: NodeId) -> Vec<(TrajId, Vec<u32>)> {
        Octree::points_by_trajectory(self, id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::octree::OctreeConfig;
    use rand::SeedableRng;
    use trajectory::gen::{generate, DatasetSpec, Scale};

    /// The trait view of the octree must agree with its inherent methods.
    #[test]
    fn octree_trait_impl_is_consistent() {
        let store = generate(&DatasetSpec::geolife(Scale::Smoke), 61).to_store();
        let tree = Octree::build(&store, OctreeConfig::default());
        let dyn_tree: &dyn CubeIndex = &tree;
        assert_eq!(dyn_tree.root(), 0);
        assert_eq!(dyn_tree.depth(0), 1);
        assert_eq!(dyn_tree.traj_count(0) as usize, store.len());
        assert_eq!(
            dyn_tree.points_by_trajectory(0).len(),
            tree.points_by_trajectory(0).len()
        );
        let mut rng = StdRng::seed_from_u64(1);
        let start = dyn_tree.sample_start(2, &mut rng);
        assert!(dyn_tree.traj_count(start) > 0);
    }
}
