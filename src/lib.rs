//! Umbrella crate for the RL4QDTS reproduction.
//!
//! Re-exports the whole stack so downstream users can depend on a single
//! crate:
//!
//! - [`trajectory`]: data model, geometry, error measures, generators, I/O;
//! - [`index`]: the spatio-temporal octree and median kd-tree;
//! - [`query`]: range / kNN / similarity / clustering operators, F1
//!   metrics, and the canonical execution path — the index-accelerated,
//!   parallel [`QueryEngine`] with incremental workload maintenance;
//! - [`simp`]: the EDTS baselines (Top-Down, Bottom-Up, Span-Search, RLTS+);
//! - [`rl`]: the from-scratch NN/DQN toolkit;
//! - [`rl4qdts`]: the paper's contribution — query-accuracy-driven
//!   collective simplification.
//!
//! Query execution should go through the public façade: [`TrajDb::open`]
//! resolves any supported on-disk layout (CSV, zero-copy snapshot,
//! sharded directory) into one object serving the typed
//! [`QueryExecutor`] surface, with mixed workloads planned as
//! heterogeneous [`QueryBatch`]es. The underlying [`QueryEngine`] (and
//! its sharded fan-out twin) stay available for layout-specific work;
//! the per-operator scan functions in [`query`] remain the semantic
//! reference.
//!
//! See `examples/quickstart.rs` for the 60-second tour,
//! `docs/ARCHITECTURE.md` (the [`architecture`] module) for the crate
//! map and system invariants, and `docs/SNAPSHOT_FORMAT.md` for the
//! on-disk snapshot specification — both books are doc-tested against
//! the implementation.

/// The architecture book (`docs/ARCHITECTURE.md`), included here so its
/// end-to-end pipeline example compiles and runs under `cargo test`.
#[doc = include_str!("../docs/ARCHITECTURE.md")]
pub mod architecture {}

pub use tiny_rl as rl;
pub use traj_index as index;
pub use traj_query as query;
pub use traj_serve as serve;
pub use traj_simp as simp;
pub use trajectory;

pub use rl4qdts;

pub use rl4qdts::{PolicyVariant, Rl4Qdts, Rl4QdtsConfig, TrainerConfig};
pub use traj_query::{
    BackendKind, DbOptions, EngineConfig, MaintainedWorkload, Query, QueryBatch, QueryEngine,
    QueryExecutor, QueryResult, ShardedQueryEngine, TrajDb,
};
pub use traj_serve::{
    Client, Coordinator, CoordinatorOptions, CoordinatorStats, DistributedResponse, FailurePolicy,
    Placement, ResponseStatus, ServeOptions, Server, SharedCoordinator,
};
pub use traj_simp::Simplifier;
pub use trajectory::{Point, Simplification, Trajectory, TrajectoryDb};
