//! Umbrella crate for the RL4QDTS reproduction.
//!
//! Re-exports the whole stack so downstream users can depend on a single
//! crate:
//!
//! - [`trajectory`]: data model, geometry, error measures, generators, I/O;
//! - [`index`]: the spatio-temporal octree;
//! - [`query`]: range / kNN / similarity / clustering engine + F1 metrics;
//! - [`simp`]: the EDTS baselines (Top-Down, Bottom-Up, Span-Search, RLTS+);
//! - [`rl`]: the from-scratch NN/DQN toolkit;
//! - [`rl4qdts`]: the paper's contribution — query-accuracy-driven
//!   collective simplification.
//!
//! See `examples/quickstart.rs` for the 60-second tour.

pub use traj_index as index;
pub use traj_query as query;
pub use traj_simp as simp;
pub use tiny_rl as rl;
pub use trajectory;

pub use rl4qdts;

pub use rl4qdts::{PolicyVariant, Rl4Qdts, Rl4QdtsConfig, TrainerConfig};
pub use traj_simp::Simplifier;
pub use trajectory::{Point, Simplification, Trajectory, TrajectoryDb};
